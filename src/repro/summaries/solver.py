"""The bottom-up summary engine: per-procedure restricted kernels.

Decomposition
=============

Every fact the whole-program kernel creates at a node of procedure P is
derived from (a) P's own initialization seeds, (b) the entry seeds
callers bind at P's entry — always ``(single(pair), pair, CLEAN)`` —
and (c) the exit facts of P's callees joined at P's call sites.  Entry
nodes receive *only* bind seeds and exit facts are produced only inside
their own procedure, so the per-procedure solution is fully determined
by two small surfaces: the *set* of entry pairs seeded at P's entry and
the *tables* of callee exit facts.  ``SummaryAnalysis`` exploits that:

* one :class:`ProcSolver` per procedure holds a kernel restricted to
  that procedure's nodes (``owned_nodes``) over the shared ICFG;
* a caller's kernel records the callee entry seeds its call transfer
  produces (they land at the foreign entry node and pop as no-ops);
  the coordinator *harvests* them and injects the fresh ones into the
  callee's kernel;
* a callee's exit table (filtered to pairs that can survive a return)
  is harvested and *mirrored* into each caller's kernel at the callee's
  exit node, where the kernel's ordinary directed return join
  instantiates the summary at every registered call record — the exact
  code path the whole-program engine runs, so instantiation is
  correct by construction;
* rounds repeat until no new seeds or exit facts appear.  Procedures
  are processed bottom-up by call-graph SCC condensation
  (:mod:`repro.summaries.callgraph`): after the acyclic part of the
  call graph settles — typically one wave per condensation depth —
  only procedures inside a cycle keep iterating.

Determinism
===========

Rounds are strict barriers: every drain in a round sees exactly the
deltas accumulated at the previous round's end, deltas are injected in
canonical (sorted-JSON) order, and harvests are diffed in a fixed
procedure order — so solutions and per-procedure counters are
byte-identical for any job count.  Worker transport is stateless
(packed state out, packed state + harvest back), and a packed/restored
kernel is behaviorally identical to one that never left the process:
``load_packed`` replays facts in insertion order (rebuilding every
per-node index), ``replay_registrations`` rebuilds the bind registry
in live-run order, and counters are reinstated from the snapshot.

Taint
=====

Fact sets are pinned identical to the kernel engine (the monotone
fixpoint is schedule-independent).  CLEAN/TAINTED bits additionally
depend on the paper's approximation-3/4 probes, which read the store
at pop time — so every engine finishes with a *retaint* pass that
recomputes taint against the frozen fact set (see
:meth:`~repro.core.kernel.KernelAnalysis._retaint`).  Here that pass
is distributed: once the fact rounds converge, every kernel demotes
and re-seeds its local CLEAN sources in one ``retaint`` round, and
further rounds mirror only CLEAN upgrades of callee exits until taint
reaches its own unique fixpoint.  The corpus equivalence sweep pins
the result equal to the kernel engine (``summary_eq_kernel``), the
same way the kernel is pinned to the reference engine.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from typing import Optional

from ..core.kernel import (
    KernelAnalysis,
    KernelStore,
    decode_int_column,
    encode_int_column,
)
from ..core.metrics import (
    PHASE_INIT,
    PHASE_POST,
    PHASE_PROPAGATE,
    BudgetOutcome,
    EngineReport,
    PhaseTimer,
)
from ..core.store import StoreStats
from ..frontend.semantics import AnalyzedProgram, parse_and_analyze
from ..icfg.builder import build_icfg
from ..icfg.graph import ICFG
from ..icfg.ir import NodeKind
from ..io import pair_from_json, pair_to_json
from ..names.context import NameContext
from ..names.object_names import is_nonvisible_based
from .callgraph import CallGraph, build_call_graph
from .envelope import (
    SUMMARY_ENTRY_SCHEMA,
    load_summary_envelope,
    make_summary_envelope,
    proc_environment_text,
    proc_program_texts,
    summary_entry_key,
    summary_proc_key,
)


def _canon(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


#: Counter fields snapshotted into packed state so a restored kernel
#: reports continuous-run numbers.
_COUNTER_FIELDS = (
    "facts",
    "worklist_pushes",
    "worklist_pops",
    "dedup_hits",
    "stale_skips",
    "upgrades",
)


def _counters_of(kernel: KernelAnalysis) -> dict:
    out = {name: getattr(kernel.stats, name) for name in _COUNTER_FIELDS}
    out["join_calls"] = kernel.join_calls
    out["join_fanout"] = kernel.join_fanout
    out["stale_bind_records"] = kernel.stale_bind_records
    out["steps"] = kernel.steps
    out["registry_keys"] = len(kernel._registry)
    out["registry_records"] = sum(
        len(records) for records in kernel._registry.values()
    )
    return out


def _restore_counters(kernel: KernelAnalysis, counters: dict) -> None:
    for name in _COUNTER_FIELDS:
        setattr(kernel.stats, name, int(counters[name]))
    kernel.join_calls = int(counters["join_calls"])
    kernel.join_fanout = int(counters["join_fanout"])
    kernel.stale_bind_records = int(counters["stale_bind_records"])
    kernel.steps = int(counters["steps"])


class _PoolFailure(RuntimeError):
    """A worker process died or misbehaved; the coordinator falls back
    to the (identical-result) serial schedule."""


class ProcSolver:
    """One procedure's restricted kernel plus its summary surfaces."""

    def __init__(
        self,
        proc: str,
        analyzed: AnalyzedProgram,
        icfg: ICFG,
        k: int,
        max_facts: Optional[int],
    ) -> None:
        graph = icfg.procs[proc]
        self.proc = proc
        self.analyzed = analyzed
        self.icfg = icfg
        self.k = k
        self.max_facts = max_facts
        self.owned = frozenset(node.nid for node in graph.nodes)
        self.entry_nid = graph.entry.nid
        self.exit_nid = graph.exit.nid
        self.callees = tuple(
            sorted(
                {
                    node.callee
                    for node in graph.nodes
                    if node.kind is NodeKind.CALL
                    and node.callee is not None
                    and node.callee in icfg.procs
                }
            )
        )
        # Stable node tokens for cache-portable packed states: owned
        # nodes by position in the procedure's node list, foreign nodes
        # (callee entries/exits) by callee name.  Node *ids* shift when
        # any earlier function is edited; these tokens do not.
        self._token_of: dict[int, tuple] = {
            node.nid: ("p", position)
            for position, node in enumerate(graph.nodes)
        }
        for callee in self.callees:
            self._token_of.setdefault(
                icfg.entry_of(callee).nid, ("entry", callee)
            )
            self._token_of.setdefault(
                icfg.exit_of(callee).nid, ("exit", callee)
            )
        self._nid_of = {
            tuple(token): nid for nid, token in self._token_of.items()
        }
        # Exactly one of (kernel, state) is set once started; both are
        # None before the cold round reaches this procedure.
        self.kernel: Optional[KernelAnalysis] = None
        self.state: Optional[dict] = None
        # Running digest of every injected delta, in order — the
        # per-drain half of the cache key.
        self.inputs_digest = hashlib.sha256(b"init").hexdigest()

    # -- kernel lifecycle ---------------------------------------------------

    def _new_kernel(self) -> KernelAnalysis:
        return KernelAnalysis(
            self.analyzed,
            self.icfg,
            k=self.k,
            max_facts=self.max_facts,
            dedup=True,
            owned_nodes=self.owned,
        )

    def cold_start(self) -> None:
        self.kernel = self._new_kernel()
        self.kernel._initialize()
        self.state = None

    def ensure_live(self) -> None:
        """Restore a live kernel from packed state (exact: facts replay
        in insertion order, the registry replays in live-run order, and
        counters come back from the snapshot)."""
        if self.kernel is not None:
            return
        assert self.state is not None
        kernel = self._new_kernel()
        kernel.absorb_packed(self.state["packed"])
        kernel.store.clear_worklist()
        kernel.replay_registrations()
        _restore_counters(kernel, self.state["stats"])
        self.kernel = kernel
        self.state = None

    def pack(self) -> dict:
        assert self.kernel is not None
        return {
            "packed": self.kernel.store.packed_json(),
            "stats": _counters_of(self.kernel),
        }

    def drop_live(self) -> None:
        """Pack and release the live kernel (parallel transport keeps
        procedure state packed between rounds)."""
        if self.kernel is not None:
            self.state = self.pack()
            self.kernel = None

    def counters(self) -> Optional[dict]:
        if self.kernel is not None:
            return _counters_of(self.kernel)
        if self.state is not None:
            return dict(self.state["stats"])
        return None

    def fact_count(self) -> int:
        if self.kernel is not None:
            return len(self.kernel.store)
        if self.state is not None:
            return int(self.state["packed"]["count"])
        return 0

    # -- inject / drain / harvest ------------------------------------------

    def advance_digest(self, delta: dict) -> str:
        """Fold one canonical input delta into the running digest."""
        self.inputs_digest = hashlib.sha256(
            f"{self.inputs_digest}:{_canon(delta)}".encode("utf-8")
        ).hexdigest()
        return self.inputs_digest

    def inject(self, delta: dict) -> None:
        """Apply one delta: entry-seed pairs at this procedure's entry
        and mirrored callee exit facts, in canonical (sorted) order —
        the same order :meth:`advance_digest` hashed.

        A ``retaint`` delta instead starts this kernel's half of the
        global retaint pass (see :meth:`KernelAnalysis._retaint`):
        demote everything, re-certify the local unconditionally-CLEAN
        sources — assignment intros, the seeds this kernel bound at its
        callees' entries, and the coordinator-injected seeds at its own
        entry — and let the following drain recompute taint against the
        frozen fact set.  Interprocedural CLEAN flow (callee exit
        taint) arrives through the ordinary mirror deltas of the
        following rounds."""
        kernel = self.kernel
        assert kernel is not None
        if delta.get("retaint"):
            kernel._taint_all()
            kernel._reseed_clean()
            # This procedure's own entry facts are coordinator-injected
            # bind seeds — CLEAN by rule, like every other entry's.
            for eid in kernel._by_node[self.entry_nid]:
                kernel._make_true_entry(self.entry_nid, eid, 1)
        for pair_json in delta.get("seeds", ()):
            pid = kernel._pair_id(pair_from_json(pair_json))
            kernel._make_true(
                self.entry_nid, kernel._single_aa(pid), pid, 1
            )
        mirrors = delta.get("mirrors", {})
        for callee in sorted(mirrors):
            exit_nid = self.icfg.exit_of(callee).nid
            for aa_json, pair_json, clean in mirrors[callee]:
                assumption = tuple(pair_from_json(p) for p in aa_json)
                kernel.store.make_true(
                    exit_nid,
                    assumption,
                    pair_from_json(pair_json),
                    bool(clean),
                )

    def drain(self, deadline_remaining: Optional[float]) -> bool:
        """Run the restricted worklist to its local fixpoint.  Returns
        False when a budget tripped (the kernel's ``budget`` says why)."""
        kernel = self.kernel
        assert kernel is not None
        kernel.deadline_seconds = deadline_remaining
        kernel._drain()
        return not kernel.budget.exceeded

    def harvest(self) -> dict:
        """The procedure's current summary surface, canonically ordered:

        * ``seeds`` — per callee, the entry pairs this kernel has
          recorded at the callee's entry node;
        * ``exits`` — this procedure's conditional exit summary, the
          ``(assumption, pair, clean)`` table at its exit node filtered
          to pairs whose members can be named after a return (globals,
          return slots, or nonvisible-based names awaiting
          substitution).  Dropped pairs can never translate at any call
          site, so the filter changes nothing downstream — it only
          keeps mirrors small and cache keys stable under edits that
          touch purely local aliasing.
        """
        kernel = self.kernel
        assert kernel is not None
        store = kernel.store
        ctx = kernel.ctx
        seeds: dict[str, list] = {}
        for callee in self.callees:
            entry_nid = self.icfg.entry_of(callee).nid
            pairs = [
                pair_to_json(pair) for _aa, pair in store.at_node(entry_nid)
            ]
            seeds[callee] = sorted(pairs, key=_canon)
        exits = []
        for assumption, pair in store.at_node(self.exit_nid):
            if not all(
                is_nonvisible_based(name)
                or ctx.survives_return(name, self.proc)
                for name in pair
            ):
                continue
            exits.append(
                [
                    [pair_to_json(p) for p in assumption],
                    pair_to_json(pair),
                    bool(store.taint_of(self.exit_nid, assumption, pair)),
                ]
            )
        exits.sort(key=_canon)
        return {"seeds": seeds, "exits": exits}

    # -- cache-portable state ----------------------------------------------

    def state_portable(self) -> dict:
        """Packed state with node ids replaced by stable tokens (see
        ``_token_of``) so cache entries survive edits to *other*
        procedures, which renumber every node."""
        state = self.state if self.state is not None else self.pack()
        packed = dict(state["packed"])
        byteorder = packed["byteorder"]
        fact_node = decode_int_column(packed["fact_node"], byteorder)
        tokens: list[list] = []
        token_ids: dict[int, int] = {}
        remapped = []
        for nid in fact_node:
            tid = token_ids.get(nid)
            if tid is None:
                tid = len(tokens)
                token_ids[nid] = tid
                tokens.append(list(self._token_of[nid]))
            remapped.append(tid)
        packed["fact_node"] = encode_int_column(remapped)
        packed["node_tokens"] = tokens
        return {"packed": packed, "stats": dict(state["stats"])}

    def adopt_portable(self, state: dict) -> None:
        """Install a cache-loaded portable state (inverse of
        :meth:`state_portable`), dropping any live kernel."""
        packed = dict(state["packed"])
        byteorder = packed["byteorder"]
        if byteorder != sys.byteorder:
            # The remapped fact_node column below is re-encoded in
            # native order; mixing orders within one payload would
            # corrupt it.  Cross-endian cache sharing is a miss.
            raise ValueError("foreign byteorder")
        tokens = packed.pop("node_tokens")
        nid_by_tid = [
            self._nid_of[(token[0], token[1])] for token in tokens
        ]
        fact_node = decode_int_column(packed["fact_node"], byteorder)
        packed["fact_node"] = encode_int_column(
            [nid_by_tid[tid] for tid in fact_node]
        )
        self.kernel = None
        self.state = {"packed": packed, "stats": dict(state["stats"])}


# -- worker-side transport ----------------------------------------------------

#: Per-worker-process memo: parsing is amortized across rounds because
#: the coordinator reuses one pool for the whole solve.
_WORKER_PROGRAMS: dict = {}


def _worker_program(source: str, k: int):
    key = (hashlib.sha256(source.encode("utf-8")).hexdigest(), k)
    cached = _WORKER_PROGRAMS.get(key)
    if cached is None:
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        _WORKER_PROGRAMS.clear()
        _WORKER_PROGRAMS[key] = cached = (analyzed, icfg)
    return cached


def _worker_drain(payload: tuple) -> dict:
    """Stateless per-round task: restore (or cold-start) one procedure,
    inject its delta, drain, and return packed state + harvest."""
    (source, k, proc, cold, state, delta, max_facts, remaining) = payload
    analyzed, icfg = _worker_program(source, k)
    solver = ProcSolver(proc, analyzed, icfg, k, max_facts)
    if cold:
        solver.cold_start()
    else:
        solver.state = state
        solver.ensure_live()
    solver.inject(delta)
    ok = solver.drain(remaining)
    kernel = solver.kernel
    assert kernel is not None
    return {
        "proc": proc,
        "ok": ok,
        "reason": kernel.budget.reason,
        "state": solver.pack(),
        "harvest": solver.harvest() if ok else {"seeds": {}, "exits": []},
    }


class SummaryAnalysis:
    """Drop-in analysis backend (``engine="summary"``): bottom-up
    procedure summaries over per-procedure restricted kernels, merged
    into one whole-program :class:`KernelStore` at the end."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        icfg: ICFG,
        k: int = 3,
        max_facts: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        dedup: bool = True,
        timer: Optional[PhaseTimer] = None,
        jobs: int = 1,
        cache=None,
        source: Optional[str] = None,
        oversubscribe: bool = False,
    ) -> None:
        if not dedup:
            raise ValueError(
                "the summary engine requires the dedup worklist discipline; "
                "use engine='reference' for the dedup=False A/B baseline"
            )
        self.analyzed = analyzed
        self.icfg = icfg
        self.k = k
        self.max_facts = max_facts
        self.deadline_seconds = deadline_seconds
        self.timer = timer if timer is not None else PhaseTimer()
        self.jobs = jobs
        self.cache = cache
        self.source = source
        self.oversubscribe = oversubscribe
        self.ctx = NameContext(analyzed.symbols, k)
        self.budget = BudgetOutcome(
            max_facts=max_facts, deadline_seconds=deadline_seconds
        )
        self.callgraph: CallGraph = build_call_graph(icfg)
        self.rounds = 0
        self.drains = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # Which procedures ever hit/missed the per-procedure cache this
        # run — the serve layer's invalidation-scoping metric reads
        # these (a post-edit solve is "scoped" when every miss belongs
        # to an edited procedure).
        self.cache_hit_procs: set[str] = set()
        self.cache_miss_procs: set[str] = set()
        self.solvers: dict[str, ProcSolver] = {}
        self._proc_keys: dict[str, str] = {}
        self._callers_of: dict[str, tuple[str, ...]] = {}
        self._pool = None
        self._pool_jobs = 0

    # -- public surface (analyze_program-compatible) -------------------------

    def run(self) -> KernelStore:
        with self.timer.phase(PHASE_INIT):
            self._setup()
        deadline_at = (
            None
            if self.deadline_seconds is None
            else time.perf_counter() + self.deadline_seconds
        )
        with self.timer.phase(PHASE_PROPAGATE):
            try:
                self._solve_rounds(deadline_at, parallel_ok=True)
            except _PoolFailure:
                # A worker died.  Determinism over throughput: restart
                # the whole schedule serially in-process — same rounds,
                # same deltas, byte-identical result.
                self._setup()
                self.budget = BudgetOutcome(
                    max_facts=self.max_facts,
                    deadline_seconds=self.deadline_seconds,
                )
                self._solve_rounds(deadline_at, parallel_ok=False)
            finally:
                self._shutdown_pool()
        with self.timer.phase(PHASE_POST):
            store = self._merge()
            if self.budget.exceeded:
                self.budget.demoted_facts = store.taint_all()
        self.store = store
        return store

    def engine_report(self) -> EngineReport:
        from ..names.alias_pairs import interned_pair_count
        from ..names.object_names import interned_name_count

        report = EngineReport()
        for proc in sorted(self.solvers):
            counters = self.solvers[proc].counters()
            if counters is None:
                continue
            report.add(
                EngineReport(
                    **{
                        name: int(counters[name])
                        for name in (
                            *_COUNTER_FIELDS,
                            "join_calls",
                            "join_fanout",
                            "stale_bind_records",
                            "registry_keys",
                            "registry_records",
                        )
                    }
                )
            )
        # Intern tables are process-global gauges, same as the other
        # engines report them.
        report.interned_names = interned_name_count()
        report.interned_pairs = interned_pair_count()
        return report

    def procedure_summary(self, proc: str) -> dict:
        """The paper-facing view of one procedure's summary: entry
        assumption (canonical JSON) -> list of ``[exit pair, clean]``.
        Conditional facts group under the entry pairs they assume; the
        unconditional part groups under ``[]``."""
        solver = self.solvers[proc]
        solver.ensure_live()
        grouped: dict[str, list] = {}
        for aa_json, pair_json, clean in solver.harvest()["exits"]:
            grouped.setdefault(_canon(aa_json), []).append(
                [pair_json, bool(clean)]
            )
        return grouped

    # -- schedule -------------------------------------------------------------

    def _setup(self) -> None:
        self.rounds = 0
        self.drains = 0
        self.cache_hit_procs = set()
        self.cache_miss_procs = set()
        self.solvers = {
            proc: ProcSolver(
                proc, self.analyzed, self.icfg, self.k, self.max_facts
            )
            for proc in self.callgraph.procs
        }
        self._callers_of = {proc: () for proc in self.callgraph.procs}
        callers: dict[str, list[str]] = {
            proc: [] for proc in self.callgraph.procs
        }
        for proc, callees in self.callgraph.edges.items():
            for callee in callees:
                callers[callee].append(proc)
        self._callers_of = {
            proc: tuple(sorted(named)) for proc, named in callers.items()
        }
        if self.cache is not None and not self._proc_keys:
            env_text = proc_environment_text(self.analyzed)
            texts = proc_program_texts(self.analyzed)
            self._proc_keys = {
                proc: summary_proc_key(env_text, texts[proc], self.k)
                for proc in self.callgraph.procs
                if proc in texts
            }

    def _empty_delta(self) -> dict:
        return {"seeds": [], "mirrors": {}}

    def _solve_rounds(
        self, deadline_at: Optional[float], parallel_ok: bool
    ) -> None:
        order_key = self.callgraph.order_key
        pending: dict[str, dict] = {
            proc: self._empty_delta()
            for proc in sorted(self.callgraph.procs, key=order_key)
        }
        cold = set(pending)
        seen_seeds: dict[str, set[str]] = {
            proc: set() for proc in self.callgraph.procs
        }
        exit_sent: dict[str, dict[str, bool]] = {
            proc: {} for proc in self.callgraph.procs
        }
        retainted = False
        while True:
            if not pending:
                if retainted:
                    break
                # Fact fixpoint reached.  Start the global retaint pass
                # (the distributed form of the single-kernel second
                # pass): every kernel demotes and re-seeds its local
                # CLEAN sources, exit broadcast state forgets which
                # clean bits were sent — facts stay known, so the
                # following rounds carry only CLEAN *upgrades* of
                # mirrored exits until taint reaches its own (unique,
                # schedule-independent) fixpoint.
                retainted = True
                for sent in exit_sent.values():
                    for key in sent:
                        sent[key] = False
                pending = {
                    proc: {"retaint": 1, "seeds": [], "mirrors": {}}
                    for proc in sorted(self.callgraph.procs, key=order_key)
                }
            remaining: Optional[float] = None
            if deadline_at is not None:
                remaining = deadline_at - time.perf_counter()
                if remaining <= 0:
                    self.budget.exceeded = True
                    self.budget.reason = "deadline"
                    return
            order = sorted(pending, key=order_key)
            harvests = self._drain_batch(
                order, pending, cold, remaining, parallel_ok
            )
            cold.difference_update(order)
            if self.budget.exceeded:
                return
            if self.max_facts is not None:
                total = sum(
                    solver.fact_count() for solver in self.solvers.values()
                )
                if total > self.max_facts:
                    self.budget.exceeded = True
                    self.budget.reason = "max_facts"
                    return
            # Barrier: diff every harvest against what has already been
            # broadcast, in fixed order, to build the next round.
            next_pending: dict[str, dict] = {}

            def delta_for(proc: str) -> dict:
                delta = next_pending.get(proc)
                if delta is None:
                    delta = next_pending[proc] = self._empty_delta()
                return delta

            for proc in order:
                harvest = harvests[proc]
                for callee, pairs in sorted(harvest["seeds"].items()):
                    seen = seen_seeds[callee]
                    fresh = [
                        pj for pj in pairs if _canon(pj) not in seen
                    ]
                    if not fresh:
                        continue
                    seen.update(_canon(pj) for pj in fresh)
                    if callee != proc:
                        # A self-recursive call's seeds are already
                        # facts in this very kernel.
                        delta_for(callee)["seeds"].extend(fresh)
                for entry in harvest["exits"]:
                    aa_json, pair_json, clean = entry
                    key = _canon([aa_json, pair_json])
                    sent = exit_sent[proc]
                    previous = sent.get(key)
                    if previous is None or (clean and not previous):
                        sent[key] = bool(clean) or bool(previous)
                        for caller in self._callers_of[proc]:
                            if caller == proc:
                                continue
                            delta_for(caller)["mirrors"].setdefault(
                                proc, []
                            ).append(entry)
            for delta in next_pending.values():
                delta["seeds"].sort(key=_canon)
                for facts in delta["mirrors"].values():
                    facts.sort(key=_canon)
            pending = next_pending
            self.rounds += 1

    def _drain_batch(
        self,
        order: list[str],
        deltas: dict[str, dict],
        cold: set[str],
        remaining: Optional[float],
        parallel_ok: bool,
    ) -> dict[str, dict]:
        """Drain every pending procedure against its delta; returns the
        per-procedure harvests.  Cache lookups and stores happen here,
        coordinator-side only."""
        harvests: dict[str, dict] = {}
        to_solve: list[str] = []
        keys: dict[str, str] = {}
        for proc in order:
            solver = self.solvers[proc]
            digest = solver.advance_digest(deltas[proc])
            proc_key = self._proc_keys.get(proc)
            if self.cache is None or proc_key is None:
                to_solve.append(proc)
                continue
            key = summary_entry_key(proc_key, digest)
            keys[proc] = key
            envelope = self.cache.get(
                key, schema=SUMMARY_ENTRY_SCHEMA, payload_key="state"
            )
            loaded = (
                None if envelope is None else load_summary_envelope(envelope)
            )
            if loaded is not None:
                state, harvest = loaded
                try:
                    solver.adopt_portable(state)
                except (KeyError, IndexError, TypeError, ValueError):
                    # A stale token (the callee set changed) — treat as
                    # a miss; the entry will be overwritten below.
                    self.cache.counters.corrupt_dropped += 1
                    to_solve.append(proc)
                    self.cache_miss_procs.add(proc)
                    continue
                harvests[proc] = harvest
                self.drains += 1
                self.cache_hits += 1
                self.cache_hit_procs.add(proc)
                continue
            to_solve.append(proc)
            self.cache_misses += 1
            self.cache_miss_procs.add(proc)

        if to_solve:
            use_workers = parallel_ok and self._effective_jobs(
                len(to_solve)
            ) > 1
            if use_workers:
                results = self._drain_parallel(
                    to_solve, deltas, cold, remaining
                )
            else:
                results = self._drain_serial(
                    to_solve, deltas, cold, remaining
                )
            for proc in to_solve:
                result = results.get(proc)
                if result is None:
                    continue
                harvests[proc] = result["harvest"]
                self.drains += 1
                if not result["ok"]:
                    self.budget.exceeded = True
                    self.budget.reason = result["reason"]
                    return harvests
                key = keys.get(proc)
                if key is not None:
                    solver = self.solvers[proc]
                    self.cache.put(
                        key,
                        make_summary_envelope(
                            key,
                            proc,
                            self._proc_keys[proc],
                            solver.inputs_digest,
                            solver.state_portable(),
                            result["harvest"],
                        ),
                    )
        return harvests

    def _drain_serial(
        self,
        procs: list[str],
        deltas: dict[str, dict],
        cold: set[str],
        remaining: Optional[float],
    ) -> dict[str, dict]:
        results: dict[str, dict] = {}
        for proc in procs:
            solver = self.solvers[proc]
            if proc in cold:
                solver.cold_start()
            else:
                solver.ensure_live()
            solver.inject(deltas[proc])
            ok = solver.drain(remaining)
            kernel = solver.kernel
            assert kernel is not None
            results[proc] = {
                "ok": ok,
                "reason": kernel.budget.reason,
                "harvest": solver.harvest()
                if ok
                else {"seeds": {}, "exits": []},
            }
            if not ok:
                break
        return results

    # -- parallel transport ---------------------------------------------------

    def _effective_jobs(self, pending: int) -> int:
        if self.jobs <= 1:
            return 1
        jobs = min(self.jobs, pending)
        if self.oversubscribe:
            return jobs
        try:
            cores = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            cores = os.cpu_count() or 1
        # Workers beyond the core count cannot help a CPU-bound drain;
        # they only add serialization and memory traffic.
        return max(1, min(jobs, cores))

    def _ensure_pool(self, jobs: int):
        if self._pool is not None and self._pool_jobs >= jobs:
            return self._pool
        self._shutdown_pool()
        from concurrent.futures import ProcessPoolExecutor

        from ..parallel.driver import _preferred_context

        self._pool = ProcessPoolExecutor(
            max_workers=jobs, mp_context=_preferred_context()
        )
        self._pool_jobs = jobs
        return self._pool

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_jobs = 0

    def _worker_source(self) -> str:
        if self.source is None:
            # The canonical re-print parses back to an identical ICFG
            # (the cache's verify path already relies on node-id
            # stability under print -> parse).
            from ..cache.keys import canonical_program_text

            self.source = canonical_program_text(self.analyzed)
        return self.source

    def _drain_parallel(
        self,
        procs: list[str],
        deltas: dict[str, dict],
        cold: set[str],
        remaining: Optional[float],
    ) -> dict[str, dict]:
        source = self._worker_source()
        payloads = []
        for proc in procs:
            solver = self.solvers[proc]
            is_cold = proc in cold
            if not is_cold:
                solver.drop_live()
            payloads.append(
                (
                    source,
                    self.k,
                    proc,
                    is_cold,
                    None if is_cold else solver.state,
                    deltas[proc],
                    self.max_facts,
                    remaining,
                )
            )
        pool = self._ensure_pool(self._effective_jobs(len(procs)))
        try:
            outcomes = list(pool.map(_worker_drain, payloads))
        except Exception as exc:
            raise _PoolFailure(str(exc)) from exc
        results: dict[str, dict] = {}
        for outcome in outcomes:
            proc = outcome["proc"]
            solver = self.solvers[proc]
            solver.kernel = None
            solver.state = outcome["state"]
            results[proc] = outcome
            if not outcome["ok"]:
                break
        return results

    # -- merge ----------------------------------------------------------------

    def _merge(self) -> KernelStore:
        """One whole-program store: each procedure's packed facts —
        filtered to its own nodes, dropping mirror copies — replayed in
        bottom-up procedure order.  ``owned_nodes=frozenset()`` skips
        all transfer-table construction: the merged kernel is a
        query-only store."""
        merged = KernelAnalysis(
            self.analyzed,
            self.icfg,
            k=self.k,
            dedup=True,
            owned_nodes=frozenset(),
        )
        totals = StoreStats()
        for proc in sorted(self.solvers, key=self.callgraph.order_key):
            solver = self.solvers[proc]
            if solver.kernel is not None:
                payload = solver.pack()
            elif solver.state is not None:
                payload = solver.state
            else:
                continue
            merged.absorb_packed(payload["packed"], keep_nids=solver.owned)
            for name in _COUNTER_FIELDS:
                setattr(
                    totals,
                    name,
                    getattr(totals, name) + int(payload["stats"][name]),
                )
        merged.store.clear_worklist()
        # The replay bumped the merge kernel's counters; report the
        # schedule's true aggregate instead.
        merged.stats = totals
        self.ctx = merged.ctx
        return merged.store


def solve_summary(
    analyzed: AnalyzedProgram,
    icfg: ICFG,
    k: int,
    jobs: int = 1,
    max_facts: Optional[int] = None,
    deadline_seconds: Optional[float] = None,
    on_budget: str = "partial",
    timer: Optional[PhaseTimer] = None,
    cache=None,
    source: Optional[str] = None,
    oversubscribe: bool = False,
):
    """Solve one program with the summary engine and wrap the result in
    a :class:`~repro.core.solution.MayAliasSolution` (the same assembly
    :func:`~repro.core.analysis.analyze_program` performs)."""
    from ..core.analysis import BudgetExceeded
    from ..core.solution import MayAliasSolution

    if timer is None:
        timer = PhaseTimer()
    start = time.perf_counter()
    analysis = SummaryAnalysis(
        analyzed,
        icfg,
        k=k,
        max_facts=max_facts,
        deadline_seconds=deadline_seconds,
        timer=timer,
        jobs=jobs,
        cache=cache,
        source=source,
        oversubscribe=oversubscribe,
    )
    store = analysis.run()
    elapsed = time.perf_counter() - start
    solution = MayAliasSolution(
        icfg,
        store,
        analysis.ctx,
        k,
        analysis_seconds=elapsed,
        engine=analysis.engine_report(),
        phases=timer,
        budget=analysis.budget,
    )
    if analysis.budget.exceeded and on_budget == "raise":
        limit = (
            f"max_facts={max_facts}"
            if analysis.budget.reason == "max_facts"
            else f"deadline={deadline_seconds}s"
        )
        raise BudgetExceeded(
            f"analysis exceeded {limit} ({len(store)} facts; "
            "partial all-tainted solution attached)",
            solution,
        )
    return solution
