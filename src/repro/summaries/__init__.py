"""Bottom-up procedure summaries (ROADMAP item 2).

The paper's assumption-indexed triples are already summary-shaped: a
conditional may-hold fact at a procedure's exit node is a "holds-if"
summary awaiting instantiation at each call site.  This package solves
each procedure in its own restricted kernel over the shared ICFG,
orders procedures bottom-up by call-graph SCC condensation, and closes
the interprocedural joins by exchanging two small per-procedure
surfaces — entry seeds produced for callees and the return-surviving
exit table — instead of re-joining everything through one global
worklist.  See docs/DESIGN.md §5c.
"""

from .callgraph import CallGraph, build_call_graph, tarjan_sccs
from .envelope import (
    SUMMARY_ENTRY_SCHEMA,
    proc_environment_text,
    proc_program_texts,
    summary_entry_key,
    summary_proc_key,
)
from .solver import SummaryAnalysis, solve_summary

__all__ = [
    "CallGraph",
    "build_call_graph",
    "tarjan_sccs",
    "SummaryAnalysis",
    "solve_summary",
    "SUMMARY_ENTRY_SCHEMA",
    "proc_environment_text",
    "proc_program_texts",
    "summary_proc_key",
    "summary_entry_key",
]
