"""Call graph, SCC condensation and the bottom-up wave schedule.

The summary engine wants procedures processed callees-first so that a
caller's drain usually sees its callees' final exit tables, and wants
procedures whose condensation depth ties to be schedulable in parallel
(they cannot feed each other except through a shared callee that is
already settled).  Tarjan's algorithm — iterative, since generated
call chains can be deep — yields the SCCs in reverse topological order
(callees before callers) which is exactly the bottom-up order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..icfg.graph import ICFG
from ..icfg.ir import NodeKind


def call_edges(icfg: ICFG) -> dict[str, tuple[str, ...]]:
    """proc -> sorted tuple of distinct callees with bodies in the ICFG
    (calls to externals have no entry/exit nodes and no summaries)."""
    edges: dict[str, tuple[str, ...]] = {}
    for proc, graph in icfg.procs.items():
        callees = {
            node.callee
            for node in graph.nodes
            if node.kind is NodeKind.CALL
            and node.callee is not None
            and node.callee in icfg.procs
        }
        edges[proc] = tuple(sorted(callees))
    return edges


def tarjan_sccs(
    nodes: Sequence[str], edges: Mapping[str, Iterable[str]]
) -> list[tuple[str, ...]]:
    """Strongly connected components, iteratively, in *reverse
    topological* order of the condensation: for every cross-component
    edge ``u -> v``, v's component appears before u's.

    Nodes are visited in the given order and successors in their given
    order, so the output is deterministic.  Each component tuple keeps
    its members in discovery order.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[tuple[str, ...]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Explicit DFS stack of (node, iterator over remaining succs).
        work: list[tuple[str, list[str]]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, list(edges.get(root, ()))))
        while work:
            node, succs = work[-1]
            advanced = False
            while succs:
                succ = succs.pop(0)
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, list(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                sccs.append(tuple(component))
    return sccs


@dataclass(frozen=True)
class CallGraph:
    """The condensation view the scheduler consumes.

    ``sccs`` is in reverse topological (bottom-up, callees-first)
    order; ``depth[proc]`` is that procedure's wave index — 0 for
    components with no callees outside themselves, else one more than
    the deepest callee component; ``waves[d]`` lists the procedures of
    every depth-``d`` component (schedulable in parallel).
    """

    procs: tuple[str, ...]
    edges: dict[str, tuple[str, ...]]
    sccs: tuple[tuple[str, ...], ...]
    scc_of: dict[str, int]
    depth: dict[str, int]
    waves: tuple[tuple[str, ...], ...]

    def order_key(self, proc: str):
        """Deterministic bottom-up processing key: wave, then component
        (already topologically placed), then name."""
        return (self.depth[proc], self.scc_of[proc], proc)


def build_call_graph(icfg: ICFG) -> CallGraph:
    procs = tuple(sorted(icfg.procs))
    edges = call_edges(icfg)
    sccs = tuple(tarjan_sccs(procs, edges))
    scc_of = {
        proc: position for position, scc in enumerate(sccs) for proc in scc
    }
    scc_depth: list[int] = []
    for position, scc in enumerate(sccs):
        depth = 0
        for proc in scc:
            for callee in edges[proc]:
                target = scc_of[callee]
                if target != position:
                    depth = max(depth, scc_depth[target] + 1)
        scc_depth.append(depth)
    depth = {proc: scc_depth[scc_of[proc]] for proc in procs}
    n_waves = max(scc_depth, default=-1) + 1
    waves = tuple(
        tuple(
            proc
            for position, scc in enumerate(sccs)
            if scc_depth[position] == d
            for proc in scc
        )
        for d in range(n_waves)
    )
    return CallGraph(
        procs=procs,
        edges=edges,
        sccs=sccs,
        scc_of=scc_of,
        depth=depth,
        waves=waves,
    )
