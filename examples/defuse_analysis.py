#!/usr/bin/env python3
"""Alias-aware def-use analysis — the [PRL91] direction the paper's
conclusion points to.

Computes reaching definitions and def-use pairs on a program where the
interesting flows go through pointers, then shows how the same client
degrades when fed Weihl's coarse aliases instead of Landi/Ryder's —
the paper's "precision of aliases greatly affects the quality of
compile-time analyses" made concrete.

Run with::

    python examples/defuse_analysis.py
"""

from repro import analyze_program, parse_and_analyze
from repro.baselines import weihl_aliases
from repro.clients import ReachingDefinitions, WeihlBackedSolution
from repro.icfg import build_icfg

SOURCE = """
int data, spare, sink;
int *cursor;

void select_target(int which) {
    if (which) { cursor = &data; } else { cursor = &spare; }
}

int main() {
    data = 1;          /* def 1 */
    spare = 2;         /* def 2 */
    select_target(1);
    *cursor = 3;       /* may-def of data and spare */
    sink = data;       /* which defs reach this use? */
    return 0;
}
"""


def main() -> None:
    analyzed = parse_and_analyze(SOURCE)
    icfg = build_icfg(analyzed)

    lr_solution = analyze_program(analyzed, icfg, k=3)
    lr_defuse = list(ReachingDefinitions(lr_solution).def_use_pairs())

    weihl = weihl_aliases(analyzed, icfg, k=3)
    weihl_solution = WeihlBackedSolution(analyzed, icfg, weihl, k=3)
    weihl_defuse = list(ReachingDefinitions(weihl_solution).def_use_pairs())

    print("def-use pairs with Landi/Ryder aliases:")
    for pair in sorted(str(p) for p in lr_defuse):
        print(f"  {pair}")
    print(f"\n  total: {len(lr_defuse)}")

    print(f"\ndef-use pairs with Weihl aliases: {len(weihl_defuse)} "
          f"({len(weihl_defuse) / max(1, len(lr_defuse)):.1f}x as many)")
    print("(every spurious pair is a dependence an optimizer must respect)")

    dead = list(ReachingDefinitions(lr_solution).dead_definitions())
    print(f"\ndead stores found with precise aliases: "
          f"{[str(d) for d in dead] or 'none'}")


if __name__ == "__main__":
    main()
