#!/usr/bin/env python3
"""The paper's Figure 1, reproduced end to end.

Prints the ICFG (in the same shape as the figure), then the
may-aliases at every node, highlighting the two aliases the paper uses
to motivate the nonvisible machinery:

* ``(**l1, g2)`` at the first return site — created by the callee even
  though ``l1`` is not in the scope of ``p``;
* ``(**l1, *l2)`` at the second return site — an alias between *two*
  names that are invisible in ``p`` (the two-assumption exit case).

Run with::

    python examples/figure1_paper_example.py [--dot]
"""

import sys

from repro import analyze_source
from repro.icfg import to_dot
from repro.names import AliasPair, ObjectName
from repro.programs.fixtures import FIGURE1


def main() -> None:
    solution = analyze_source(FIGURE1, k=3)
    icfg = solution.icfg

    if "--dot" in sys.argv:
        print(to_dot(icfg, "figure1"))
        return

    print("ICFG (compare with Figure 1 of the paper):")
    for node in icfg.nodes:
        succs = ", ".join(f"n{s.nid}" for s in node.succs)
        print(f"  n{node.nid:<3} {node.proc:<5} {node.label():<22} -> [{succs}]")
    print()

    print("may-aliases per node:")
    for node in icfg.nodes:
        pairs = sorted(str(p) for p in solution.may_alias(node))
        print(f"  n{node.nid:<3} {node.label():<22} {pairs}")
    print()

    l1 = ObjectName("main::l1").deref().deref()
    l2 = ObjectName("main::l2").deref()
    g2 = ObjectName("g2")
    returns = sorted(
        (n for n in icfg.nodes if n.kind.value == "return"), key=lambda n: n.nid
    )
    first, second = returns
    print("paper's highlighted aliases:")
    print(
        f"  (**l1, g2) at n{first.nid}:  "
        f"{AliasPair(l1, g2) in solution.may_alias(first)}"
    )
    print(
        f"  (**l1, *l2) at n{second.nid}: "
        f"{AliasPair(l1, l2) in solution.may_alias(second)}"
    )
    print(f"\n%YES_3 = {solution.percent_yes():.1f} "
          "(the two-nonvisible derivation is counted as possibly imprecise)")


if __name__ == "__main__":
    main()
