#!/usr/bin/env python3
"""A dead-store eliminator built on alias-aware liveness.

The optimizer use case from the paper's first paragraph, end to end:
find stores no later read can observe — honestly, which with pointers
means consulting the may-alias solution for every read and write.

Run with::

    python examples/dead_store_eliminator.py
"""

from repro import analyze_source
from repro.clients import LiveNames

SOURCE = """
int result;
int *out;

void emit(int *slot, int v) {
    *slot = v;                /* observable through the pointer */
}

int main() {
    int scratch, kept;
    scratch = 1;              /* DEAD: never read */
    kept = 2;
    out = &result;
    emit(out, kept);          /* stores into result via *slot */
    kept = 99;                /* DEAD: function ends */
    return result;
}
"""


def main() -> None:
    solution = analyze_source(SOURCE, k=2)
    liveness = LiveNames(solution)

    print("stores that no execution can observe (safe to delete):")
    found = False
    for node in liveness.dead_stores():
        found = True
        loc = f"{node.span.start.line}" if node.span.start.line > 1 else "?"
        print(f"  line {loc}: n{node.nid}  {node.label()}")
    if not found:
        print("  none")

    print("\nstores kept alive *only* by pointer knowledge:")
    # `*slot = v` writes result through an alias; a naive (alias-blind)
    # liveness would call it dead inside `emit`.
    from repro.clients import node_access

    star_slot = [
        node
        for node in solution.icfg.nodes
        if node.proc == "emit"
        and "*emit::slot" in [str(w) for w in node_access(node).writes]
    ]
    for node in star_slot:
        live = {str(n) for n in liveness.live_out(node)}
        hits = sorted(n for n in live if "result" in n or "slot" in n)
        print(f"  n{node.nid} (writes *slot): live-out includes {hits}")


if __name__ == "__main__":
    main()
