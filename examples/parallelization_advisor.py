#!/usr/bin/env python3
"""A downstream client: a loop-parallelization advisor.

The paper motivates may-alias analysis with optimizers and
parallelizers: two statements *conflict* when one writes a location the
other accesses, and conflicts block reordering/parallelizing.  This
example uses the alias solution to decide whether the two assignments
inside a loop body may conflict — the classic question a parallelizer
asks before splitting iterations across threads.

Run with::

    python examples/parallelization_advisor.py
"""

from repro import analyze_source
from repro.icfg import NodeKind, PtrAssign
from repro.names import AliasPair

# Two variants of the same loop: one with provably disjoint targets,
# one where the pointers may alias.
DISJOINT = """
int a, b;
int *p, *q;
int main() {
    int i;
    p = &a;
    q = &b;
    for (i = 0; i < 100; i = i + 1) {
        *p = i;        /* writes a */
        *q = i + 1;    /* writes b: no conflict */
    }
    return 0;
}
"""

MAY_CONFLICT = """
int a, b;
int *p, *q;
int main() {
    int i;
    p = &a;
    q = &b;
    if (a) { q = p; }  /* now *q may be a too */
    for (i = 0; i < 100; i = i + 1) {
        *p = i;
        *q = i + 1;    /* may write the same location as *p */
    }
    return 0;
}
"""


def writes_of(node) -> list:
    """Object names written by a node (pointer assignments only; the
    scalar stores *p = i are lowered to OTHER nodes, so for this demo
    we inspect the source-level deref targets instead)."""
    if node.is_pointer_assignment:
        assert isinstance(node.stmt, PtrAssign)
        return [node.stmt.lhs]
    return []


def advise(title: str, source: str) -> None:
    solution = analyze_source(source, k=2)
    icfg = solution.icfg

    # The two stores write *p and *q; ask the alias solution whether
    # *p and *q may be the same location anywhere inside the loop.
    from repro.names import ObjectName

    star_p = ObjectName("p").deref()
    star_q = ObjectName("q").deref()
    loop_nodes = [
        n
        for n in icfg.nodes
        if n.proc == "main" and n.kind in (NodeKind.OTHER, NodeKind.PREDICATE)
        and "for" in n.label()
    ]
    conflict = any(
        solution.alias_query(n, star_p, star_q) for n in loop_nodes
    )
    verdict = "KEEP SEQUENTIAL (may conflict)" if conflict else "PARALLELIZE"
    print(f"{title:>14}: *p/*q may alias in loop = {conflict} -> {verdict}")


def main() -> None:
    advise("disjoint", DISJOINT)
    advise("may-conflict", MAY_CONFLICT)


if __name__ == "__main__":
    main()
