#!/usr/bin/env python3
"""Compare Landi/Ryder against the Weihl [Wei80] and Andersen-style
baselines on the fixture programs (a miniature of the paper's Table 1).

Run with::

    python examples/compare_baselines.py
"""

from repro.baselines import andersen_aliases, weihl_aliases
from repro.core import analyze_program
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.programs.fixtures import ALL_FIXTURES


def main() -> None:
    print(f"{'program':>14} {'nodes':>6} {'LR':>6} {'Weihl':>7} "
          f"{'Andersen':>9} {'Weihl/LR':>9} {'%YES':>6}")
    ratios = []
    for name, source in sorted(ALL_FIXTURES.items()):
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        lr = analyze_program(analyzed, icfg, k=2)
        weihl = weihl_aliases(analyzed, icfg, k=2)
        andersen = andersen_aliases(analyzed, icfg)
        lr_count = len(lr.program_aliases())
        ratio = weihl.alias_count / max(1, lr_count)
        ratios.append(ratio)
        print(
            f"{name:>14} {len(icfg):>6} {lr_count:>6} {weihl.alias_count:>7} "
            f"{len(andersen.aliases):>9} {ratio:>9.1f} {lr.percent_yes():>6.1f}"
        )
    print(f"\naverage Weihl/LR ratio: {sum(ratios) / len(ratios):.1f} "
          f"(paper: 30.7 on its 9-program suite)")


if __name__ == "__main__":
    main()
