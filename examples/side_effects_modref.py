#!/usr/bin/env python3
"""MOD/REF side-effect analysis — the [Ban79] problem, alias-aware.

For every procedure: which observable locations may a call modify or
reference?  With pointers, answering needs may-alias information (a
store through ``*p`` modifies whatever ``*p`` may point at).  Pure
procedures — those modifying nothing observable — are safe to reorder
or re-run, a classic optimizer query.

Run with::

    python examples/side_effects_modref.py
"""

from repro import analyze_source
from repro.clients import ModRefAnalysis

SOURCE = """
struct counter { int value; int step; };

struct counter shared;
int *window;
int log_total;

int peek(void) {
    return shared.value;            /* REF only: pure */
}

void bump(void) {
    shared.value = shared.value + shared.step;
}

void retarget(int *p) {
    window = p;                     /* MOD window */
}

void poke(int v) {
    *window = v;                    /* MOD through a pointer */
}

int main() {
    int slot;
    retarget(&slot);
    bump();
    poke(41);
    log_total = peek();
    return 0;
}
"""


def main() -> None:
    solution = analyze_source(SOURCE, k=2)
    analysis = ModRefAnalysis(solution)

    print(f"{'procedure':>10}  {'MOD (observable)':<34} REF (observable)")
    for name in solution.icfg.procs:
        mod = ", ".join(sorted(str(n) for n in analysis.mod(name))) or "-"
        ref = ", ".join(sorted(str(n) for n in analysis.ref(name))) or "-"
        print(f"{name:>10}  {mod:<34} {ref}")

    pure = sorted(analysis.pure_procedures())
    print(f"\npure procedures (safe to reorder/duplicate): {pure}")

    # poke writes *window; with aliases we know that may be main's slot
    # — invisible to a non-alias-aware MOD/REF.
    call = next(iter(solution.icfg.call_sites("poke")))
    touched = sorted(str(n) for n in analysis.call_site_mod(call))
    print(f"\nwhat may `poke(41)` modify? {touched}")


if __name__ == "__main__":
    main()
