#!/usr/bin/env python3
"""k-limiting on recursive structures (paper §3).

Builds a linked list and shows how the alias solution changes with the
k-limit: small k truncates names early (coarse but cheap), larger k
tracks deeper ``->next`` chains (precise but more facts).  This is the
paper's central engineering trade-off for recursive data structures.

Run with::

    python examples/linked_list_klimit.py
"""

from repro import analyze_source
from repro.programs.fixtures import LINKED_LIST


def main() -> None:
    print(f"{'k':>3} {'facts':>8} {'node pairs':>11} {'prog aliases':>13} "
          f"{'%YES':>6} {'time':>8}")
    for k in (1, 2, 3, 4):
        solution = analyze_source(LINKED_LIST, k=k)
        stats = solution.stats()
        print(
            f"{k:>3} {stats.may_hold_facts:>8} {stats.node_alias_count:>11} "
            f"{stats.program_alias_count:>13} {stats.percent_yes:>6.1f} "
            f"{stats.analysis_seconds * 1000:>6.1f}ms"
        )

    # Show the truncated representatives at the exit of `find` for
    # k=1: deep chains collapse into `~`-marked names.
    print("\ntruncated representatives at exit(find), k=1:")
    solution = analyze_source(LINKED_LIST, k=1)
    exit_rev = solution.icfg.exit_of("find")
    for pair in sorted(str(p) for p in solution.may_alias(exit_rev)):
        if "~" in pair:
            print(f"  {pair}")


if __name__ == "__main__":
    main()
