#!/usr/bin/env python3
"""Quickstart: analyze a small C program and print its may-aliases.

Run with::

    python examples/quickstart.py
"""

from repro import analyze_source

SOURCE = """
int *shared, value;

void publish(int *p) {
    shared = p;          /* the callee captures the pointer */
}

int main() {
    int local;
    publish(&value);     /* shared may point at the global... */
    publish(&local);     /* ...or at main's local */
    return 0;
}
"""


def main() -> None:
    # k=3 matches the paper's evaluation (Table 2 uses k = 3).
    solution = analyze_source(SOURCE, k=3)

    stats = solution.stats()
    print(f"ICFG nodes:        {stats.icfg_nodes}")
    print(f"may-hold facts:    {stats.may_hold_facts}")
    print(f"program aliases:   {stats.program_alias_count}")
    print(f"%YES (precision):  {stats.percent_yes:.1f}")
    print(f"analysis time:     {stats.analysis_seconds * 1000:.1f} ms")
    print()

    # Per-node queries: what may *shared refer to at the end of main?
    exit_main = solution.icfg.exit_of("main")
    print(f"aliases at {exit_main.label()}:")
    for pair in sorted(str(p) for p in solution.may_alias(exit_main)):
        print(f"  {pair}")


if __name__ == "__main__":
    main()
