"""Exact alias expectations on the hand-written fixtures.

Beyond "analyzable and sound", these pin down *specific* facts a
maintainer would want to hold — the analysis's contract on realistic
code shapes.
"""

import pytest

from repro import analyze_source
from repro.names import AliasPair, ObjectName
from repro.programs.fixtures import EXPR_TREE, LINKED_LIST, MATRIX_SWAP, STRING_TABLE


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    parts = text.split("->")
    name = ObjectName(parts[0])
    for part in parts[1:]:
        name = name.deref().field(part)
    for _ in range(stars):
        name = name.deref()
    return name


class TestLinkedList:
    @pytest.fixture(scope="class")
    def solution(self):
        return analyze_source(LINKED_LIST, k=2)

    def test_push_result_aliases_input(self, solution):
        # push returns a node whose ->next is the old head.
        exit_push = solution.icfg.exit_of("push")
        assert solution.alias_query(
            exit_push,
            n("push$ret->next").deref(),
            n("push::head").deref(),
        )

    def test_find_result_may_be_any_node(self, solution):
        exit_find = solution.icfg.exit_of("find")
        assert solution.alias_query(
            exit_find, n("*find$ret"), n("*find::cur")
        )

    def test_list_head_aliases_through_main(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert solution.alias_query(
            exit_main, n("*main::list"), n("*main::hit")
        )

    def test_unrelated_ints_never_alias(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert not solution.alias_query(
            exit_main, ObjectName("main::i"), n("*main::list")
        )


class TestStringTable:
    @pytest.fixture(scope="class")
    def solution(self):
        return analyze_source(STRING_TABLE, k=2)

    def test_interned_entry_reachable_from_bucket(self, solution):
        exit_intern = solution.icfg.exit_of("intern")
        assert solution.alias_query(
            exit_intern, n("*intern$ret"), n("*buckets")
        )

    def test_last_interned_aliases_entry_text(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert solution.alias_query(
            exit_main, n("*last_interned"), n("*main::a->text")
        )


class TestExprTree:
    @pytest.fixture(scope="class")
    def solution(self):
        return analyze_source(EXPR_TREE, k=2)

    def test_tree_children_alias_constructor_args(self, solution):
        exit_binop = solution.icfg.exit_of("binop")
        assert solution.alias_query(
            exit_binop, n("binop$ret->lhs").deref(), n("*binop::l")
        )

    def test_leaf_nodes_fresh(self, solution):
        # Two leaf() results come from distinct mallocs, but through the
        # shared return slot they *may* alias — the conservative answer.
        exit_main = solution.icfg.exit_of("main")
        assert solution.alias_query(exit_main, n("*main::tree"), n("*binop$ret"))


class TestMatrixSwap:
    @pytest.fixture(scope="class")
    def solution(self):
        return analyze_source(MATRIX_SWAP, k=2)

    def test_rows_may_point_to_any_row_after_swap(self, solution):
        exit_main = solution.icfg.exit_of("main")
        star_rows = n("*rows")
        for row in ("r0", "r2"):
            assert solution.alias_query(exit_main, star_rows, ObjectName(row)), row

    def test_swap_exchanges_through_double_pointers(self, solution):
        exit_swap = solution.icfg.exit_of("swap_rows")
        assert solution.alias_query(
            exit_swap, n("**swap_rows::a"), n("*swap_rows::t")
        )
