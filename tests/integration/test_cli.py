"""Integration tests for the repro-aliases CLI."""

import pytest

from repro.cli import main
from repro.programs.fixtures import FIGURE1


@pytest.fixture()
def figure1_file(tmp_path):
    path = tmp_path / "figure1.c"
    path.write_text(FIGURE1)
    return str(path)


class TestCli:
    def test_summary(self, figure1_file, capsys):
        assert main([figure1_file]) == 0
        out = capsys.readouterr().out
        assert "ICFG nodes:" in out
        assert "%YES_3" in out

    def test_program_aliases_listing(self, figure1_file, capsys):
        assert main([figure1_file, "--program-aliases"]) == 0
        out = capsys.readouterr().out
        assert "(*g1, g2)" in out

    def test_per_node_listing(self, figure1_file, capsys):
        assert main([figure1_file, "--per-node"]) == 0
        out = capsys.readouterr().out
        assert "per-node may-aliases:" in out

    def test_weihl_flag(self, figure1_file, capsys):
        assert main([figure1_file, "--weihl"]) == 0
        out = capsys.readouterr().out
        assert "Weihl aliases:" in out

    def test_dot_output(self, figure1_file, capsys):
        assert main([figure1_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_k_flag(self, figure1_file, capsys):
        assert main([figure1_file, "-k", "1"]) == 0
        assert "%YES_1" in capsys.readouterr().out

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("int main() { return 0; }"))
        assert main(["-"]) == 0
        assert "ICFG nodes:" in capsys.readouterr().out

    def test_max_facts_exceeded_reports_error(self, tmp_path, capsys):
        dense = tmp_path / "dense.c"
        dense.write_text(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """
        )
        assert main([str(dense), "--max-facts", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_analyze_subcommand_word_optional(self, figure1_file, capsys):
        # `repro analyze file.c` and `repro-aliases file.c` both work.
        assert main(["analyze", figure1_file]) == 0
        assert "ICFG nodes:" in capsys.readouterr().out

    def test_worklist_counters_in_summary(self, figure1_file, capsys):
        assert main([figure1_file]) == 0
        out = capsys.readouterr().out
        assert "worklist:" in out
        assert "pops" in out and "pushes" in out and "dedup hits" in out

    def test_stats_json_to_stdout(self, figure1_file, capsys):
        import json

        assert main([figure1_file, "--stats-json", "-"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[: out.index("ICFG nodes:")])
        assert document["schema"] == "repro-stats/1"
        assert document["k"] == 3
        assert document["engine"]["worklist_pops"] > 0
        assert "propagate" in document["phases"]
        assert "parse" in document["phases"]
        assert document["budget"]["exceeded"] is False

    def test_stats_json_to_file(self, figure1_file, tmp_path, capsys):
        import json

        stats_path = tmp_path / "stats.json"
        assert main([figure1_file, "--stats-json", str(stats_path)]) == 0
        with open(stats_path) as fp:
            document = json.load(fp)
        assert document["schema"] == "repro-stats/1"
        assert document["solution"]["icfg_nodes"] > 0
        assert document["solution"]["may_hold_facts"] > 0

    def test_budget_run_still_emits_stats(self, tmp_path, capsys):
        import json

        dense = tmp_path / "dense.c"
        dense.write_text(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """
        )
        stats_path = tmp_path / "stats.json"
        assert main([str(dense), "--max-facts", "2", "--stats-json", str(stats_path)]) == 1
        assert "error:" in capsys.readouterr().err
        with open(stats_path) as fp:
            document = json.load(fp)
        assert document["budget"]["exceeded"] is True
        assert document["budget"]["reason"] == "max_facts"
        assert document["solution"]["percent_yes"] == 0.0

    def test_deadline_flag_accepted(self, figure1_file, capsys):
        assert main([figure1_file, "--deadline-seconds", "600"]) == 0
        assert "ICFG nodes:" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["/does/not/exist.c"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_export(self, figure1_file, tmp_path, capsys):
        out = tmp_path / "sol.json"
        assert main([figure1_file, "--json", str(out)]) == 0
        from repro.io import load_solution

        with open(out) as fp:
            loaded = load_solution(fp)
        assert loaded.k == 3
        assert loaded.node_pair_count() > 0

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert main([str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unsupported_feature_reported(self, tmp_path, capsys):
        bad = tmp_path / "fp.c"
        bad.write_text("int (*fp)(int); int main() { return 0; }")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "function pointer" in err or "declarator" in err


class TestDifftestCli:
    """``repro difftest``: exit statuses, reports, replay, stats."""

    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["difftest", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "difftest: 2 programs, 0 violations" in out

    def test_replay_corpus_entry(self, capsys):
        assert (
            main(
                [
                    "difftest",
                    "--replay",
                    "tests/corpus/mutation-assign-intro.c",
                ]
            )
            == 0
        )
        assert "0 violations" in capsys.readouterr().out

    def test_replay_missing_file_exits_two(self, capsys):
        assert main(["difftest", "--replay", "/does/not/exist.c"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_json_stdout(self, capsys):
        import json

        assert main(["difftest", "--seeds", "1", "--stats-json", "-"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[: out.rindex("}") + 1])
        assert document["schema"] == "repro-difftest/1"
        assert document["suite"]["programs"] == 1

    def test_violation_exits_three_with_report_and_shrunk_corpus(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.core.transfer import AssignTransfer
        from repro.cli import EXIT_SOUNDNESS_VIOLATION

        monkeypatch.setattr(
            AssignTransfer, "intro", lambda self, succ_id, stmt: None
        )
        corpus = tmp_path / "corpus"
        status = main(
            [
                "difftest",
                "--seeds",
                "3",
                "--draws",
                "4",
                "--corpus-dir",
                str(corpus),
            ]
        )
        assert status == EXIT_SOUNDNESS_VIOLATION
        out = capsys.readouterr().out
        assert "SOUNDNESS VIOLATION" in out
        assert "dynamic_in_lr" in out
        assert "saved to" in out
        entries = list(corpus.glob("*.c"))
        assert len(entries) == 1
        assert len(entries[0].read_text().splitlines()) <= 30
