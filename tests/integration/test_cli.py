"""Integration tests for the repro-aliases CLI."""

import pytest

from repro.cli import main
from repro.programs.fixtures import FIGURE1


@pytest.fixture()
def figure1_file(tmp_path):
    path = tmp_path / "figure1.c"
    path.write_text(FIGURE1)
    return str(path)


class TestCli:
    def test_summary(self, figure1_file, capsys):
        assert main([figure1_file]) == 0
        out = capsys.readouterr().out
        assert "ICFG nodes:" in out
        assert "%YES_3" in out

    def test_program_aliases_listing(self, figure1_file, capsys):
        assert main([figure1_file, "--program-aliases"]) == 0
        out = capsys.readouterr().out
        assert "(*g1, g2)" in out

    def test_per_node_listing(self, figure1_file, capsys):
        assert main([figure1_file, "--per-node"]) == 0
        out = capsys.readouterr().out
        assert "per-node may-aliases:" in out

    def test_weihl_flag(self, figure1_file, capsys):
        assert main([figure1_file, "--weihl"]) == 0
        out = capsys.readouterr().out
        assert "Weihl aliases:" in out

    def test_dot_output(self, figure1_file, capsys):
        assert main([figure1_file, "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_k_flag(self, figure1_file, capsys):
        assert main([figure1_file, "-k", "1"]) == 0
        assert "%YES_1" in capsys.readouterr().out

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("int main() { return 0; }"))
        assert main(["-"]) == 0
        assert "ICFG nodes:" in capsys.readouterr().out

    def test_max_facts_exceeded_reports_error(self, tmp_path, capsys):
        dense = tmp_path / "dense.c"
        dense.write_text(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """
        )
        assert main([str(dense), "--max-facts", "2"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["/does/not/exist.c"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_export(self, figure1_file, tmp_path, capsys):
        out = tmp_path / "sol.json"
        assert main([figure1_file, "--json", str(out)]) == 0
        from repro.io import load_solution

        with open(out) as fp:
            loaded = load_solution(fp)
        assert loaded.k == 3
        assert loaded.node_pair_count() > 0

    def test_parse_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert main([str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unsupported_feature_reported(self, tmp_path, capsys):
        bad = tmp_path / "fp.c"
        bad.write_text("int (*fp)(int); int main() { return 0; }")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "function pointer" in err or "declarator" in err
