"""The JSON-RPC surface over in-memory streams: an editor session
without the editor.

Drives :class:`JsonRpcServer` through a connected StreamReader/Writer
pair (no stdio, no subprocess) and pins the LSP-flavored contract:
lifecycle methods, full-text document sync with published lint
diagnostics after every open/change, the ``repro/mayAlias`` custom
request, and the error codes for unknown methods and bad params.
"""

import asyncio
import json

import pytest

from repro.serve import ServeSession
from repro.serve.protocol import JsonRpcServer

PROGRAM = """
int g;
int h;
int *p;

void main(void) {
    p = &g;
}
"""

PROGRAM_EDIT = PROGRAM.replace("p = &g;", "p = &h;")


class RpcHarness:
    """A client driving one in-process JsonRpcServer."""

    def __init__(self, session):
        self.session = session
        self.next_id = 0

    async def __aenter__(self):
        # Two unidirectional pipes via a loopback socket pair.
        import socket

        client_sock, server_sock = socket.socketpair()
        self.client_reader, self.client_writer = await asyncio.open_connection(
            sock=client_sock
        )
        server_reader, server_writer = await asyncio.open_connection(
            sock=server_sock
        )
        self.server = JsonRpcServer(self.session, server_reader, server_writer)
        self.task = asyncio.ensure_future(self.server.run())
        return self

    async def __aexit__(self, *exc):
        if not self.task.done():
            await self.notify("exit")
            await asyncio.wait_for(self.task, timeout=30)
        self.client_writer.close()

    async def send(self, message):
        body = json.dumps(message).encode()
        self.client_writer.write(
            b"Content-Length: %d\r\n\r\n" % len(body) + body
        )
        await self.client_writer.drain()

    async def receive(self):
        length = None
        while True:
            line = await asyncio.wait_for(
                self.client_reader.readline(), timeout=60
            )
            stripped = line.strip()
            if not stripped:
                break
            key, _, value = stripped.partition(b":")
            if key.strip().lower() == b"content-length":
                length = int(value)
        body = await asyncio.wait_for(
            self.client_reader.readexactly(length), timeout=60
        )
        return json.loads(body.decode())

    async def request(self, method, params=None):
        self.next_id += 1
        await self.send(
            {
                "jsonrpc": "2.0",
                "id": self.next_id,
                "method": method,
                "params": params or {},
            }
        )

    async def notify(self, method, params=None):
        await self.send(
            {"jsonrpc": "2.0", "method": method, "params": params or {}}
        )

    async def expect_response(self, request_id):
        """Read frames until the response to ``request_id``; returns
        (response, notifications seen on the way)."""
        notifications = []
        while True:
            message = await self.receive()
            if message.get("id") == request_id:
                return message, notifications
            notifications.append(message)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=300))


@pytest.fixture()
def session(tmp_path):
    return ServeSession(k=3, cache_dir=str(tmp_path / "cache"))


class TestLifecycle:
    def test_initialize_shutdown_exit(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.request("initialize")
                response, _ = await rpc.expect_response(1)
                capabilities = response["result"]["capabilities"]
                assert capabilities["textDocumentSync"]["openClose"] is True
                await rpc.request("shutdown")
                response, _ = await rpc.expect_response(2)
                assert response["result"] is None
                await rpc.notify("exit")
                await asyncio.wait_for(rpc.task, timeout=30)
                assert rpc.server.exited

        run(scenario())

    def test_unknown_method_32601(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.request("workspace/definitelyNotAThing")
                response, _ = await rpc.expect_response(1)
                assert response["error"]["code"] == -32601

        run(scenario())

    def test_unknown_notification_ignored(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify("$/cancelRequest", {"id": 99})
                await rpc.request("initialize")
                response, _ = await rpc.expect_response(1)
                assert "result" in response

        run(scenario())


class TestDocumentSync:
    def test_did_open_publishes_diagnostics(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify(
                    "textDocument/didOpen",
                    {"textDocument": {"uri": "a.c", "text": PROGRAM}},
                )
                note = await rpc.receive()
                assert note["method"] == "textDocument/publishDiagnostics"
                assert note["params"]["uri"] == "a.c"
                assert note["params"]["version"] == 0
                for diagnostic in note["params"]["diagnostics"]:
                    assert diagnostic["severity"] in (1, 2, 3)
                    assert diagnostic["source"] == "repro"

        run(scenario())

    def test_did_change_republishes(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify(
                    "textDocument/didOpen",
                    {"textDocument": {"uri": "a.c", "text": PROGRAM}},
                )
                await rpc.receive()
                await rpc.notify(
                    "textDocument/didChange",
                    {
                        "textDocument": {"uri": "a.c"},
                        "contentChanges": [{"text": PROGRAM_EDIT}],
                    },
                )
                note = await rpc.receive()
                assert note["params"]["version"] == 1

        run(scenario())

    def test_parse_error_becomes_diagnostic(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify(
                    "textDocument/didOpen",
                    {
                        "textDocument": {
                            "uri": "bad.c",
                            "text": "void main(void) { ??? }",
                        }
                    },
                )
                note = await rpc.receive()
                (diagnostic,) = note["params"]["diagnostics"]
                assert diagnostic["severity"] == 1
                assert diagnostic["code"] == "parse-error"

        run(scenario())

    def test_incremental_sync_rejected(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify(
                    "textDocument/didOpen",
                    {"textDocument": {"uri": "a.c", "text": PROGRAM}},
                )
                await rpc.receive()
                # Range-based (incremental) change: refused, not
                # silently corrupting the resident text.
                await rpc.notify(
                    "textDocument/didChange",
                    {
                        "textDocument": {"uri": "a.c"},
                        "contentChanges": [
                            {
                                "range": {
                                    "start": {"line": 0, "character": 0},
                                    "end": {"line": 0, "character": 0},
                                },
                                "text": "int q;",
                            }
                        ],
                    },
                )
                # Still answers from the unchanged text.
                await rpc.request(
                    "repro/mayAlias",
                    {"uri": "a.c", "line": 7, "a": "*p", "b": "g"},
                )
                response, _ = await rpc.expect_response(1)
                assert response["result"]["may_alias"] is True
                assert response["result"]["version"] == 0

        run(scenario())


class TestMayAlias:
    def test_query_and_edit(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.notify(
                    "textDocument/didOpen",
                    {"textDocument": {"uri": "a.c", "text": PROGRAM}},
                )
                await rpc.receive()
                await rpc.request(
                    "repro/mayAlias",
                    {"uri": "a.c", "line": 7, "a": "*p", "b": "g"},
                )
                response, _ = await rpc.expect_response(1)
                assert response["result"]["may_alias"] is True

                await rpc.notify(
                    "textDocument/didChange",
                    {
                        "textDocument": {"uri": "a.c"},
                        "contentChanges": [{"text": PROGRAM_EDIT}],
                    },
                )
                await rpc.receive()
                await rpc.request(
                    "repro/mayAlias",
                    {"uri": "a.c", "line": 7, "a": "*p", "b": "g"},
                )
                response, _ = await rpc.expect_response(2)
                assert response["result"]["may_alias"] is False

        run(scenario())

    def test_bad_params_32602(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.request("repro/mayAlias", {"uri": 42})
                response, _ = await rpc.expect_response(1)
                assert response["error"]["code"] == -32602

        run(scenario())

    def test_stats(self, session):
        async def scenario():
            async with RpcHarness(session) as rpc:
                await rpc.request("repro/stats")
                response, _ = await rpc.expect_response(1)
                assert response["result"]["schema"] == "repro-serve-stats/1"

        run(scenario())
