"""End-to-end: ``repro corpus run`` and the parse-error resilience of
the ``analyze`` / ``lint`` sweeps (one bad file must not abort the
others)."""

import json

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.cli import main

GOOD = """
extern void *malloc(unsigned long n);
struct cell { int v; struct cell *next; };
struct cell *push(struct cell *head) {
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    if (c != 0) { c->next = head; return c; }
    return head;
}
int main() { struct cell *l = 0; l = push(push(l)); return l != 0; }
"""

MINIC_GOOD = """
int *g;
int v;
int main() { g = &v; return *g; }
"""

BROKEN = "int main( { not C at all\n"


@pytest.fixture()
def corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    root.mkdir()
    (root / "good.c").write_text(GOOD)
    (root / "broken.c").write_text(BROKEN)
    return root


class TestCorpusRun:
    def test_run_writes_sarif_and_report(self, corpus_dir, tmp_path, capsys):
        out_dir = tmp_path / "out"
        status = main(
            [
                "corpus",
                "run",
                str(corpus_dir / "good.c"),
                "--out",
                str(out_dir),
            ]
        )
        assert status == 0
        report = json.loads((out_dir / "report.json").read_text())
        assert report["schema"] == "repro-corpus/1"
        assert report["aggregate"]["files_ok"] == 1
        entry = report["files"][0]
        sarif = json.loads(open(entry["sarif_file"]).read())
        assert sarif["version"] == "2.1.0"
        stdout = capsys.readouterr().out
        assert "1/1 files ok" in stdout

    def test_bad_file_reported_not_fatal(self, corpus_dir, capsys):
        status = main(["corpus", "run", str(corpus_dir)])
        assert status == 1  # parse error present -> non-zero, but ran
        stdout = capsys.readouterr().out
        assert "parse_error" in stdout
        assert "1/2 files ok" in stdout

    def test_cold_then_warm_cache(self, corpus_dir, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        stats = tmp_path / "warm.json"
        good = str(corpus_dir / "good.c")
        assert main(["corpus", "run", good, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "corpus",
                    "run",
                    good,
                    "--cache-dir",
                    cache_dir,
                    "--stats-json",
                    str(stats),
                ]
            )
            == 0
        )
        report = json.loads(stats.read_text())
        assert report["aggregate"]["cache"]["hits"] == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["corpus", "run", "does-not-exist"]) == 2


class TestSweepParseErrors:
    def test_analyze_sweep_continues_past_bad_file(self, tmp_path, capsys):
        good = tmp_path / "good.c"
        bad = tmp_path / "bad.c"
        good.write_text(MINIC_GOOD)
        bad.write_text(BROKEN)
        stats = tmp_path / "stats.json"
        status = main(
            [str(good), str(bad), "-k", "2", "--stats-json", str(stats)]
        )
        assert status == 1
        captured = capsys.readouterr()
        assert str(good) in captured.out  # good file still summarized
        assert "error" in captured.err
        document = json.loads(stats.read_text())
        assert document["parse_errors"] == 1
        assert document["failed_shards"] == 0
        entries = {e["file"]: e for e in document["files"]}
        assert "parse_error" in entries[str(bad)]
        assert "solution" in entries[str(good)]

    def test_lint_sweep_continues_past_bad_file(self, tmp_path, capsys):
        good = tmp_path / "good.c"
        bad = tmp_path / "bad.c"
        good.write_text(MINIC_GOOD)
        bad.write_text(BROKEN)
        stats = tmp_path / "stats.json"
        status = main(
            [
                "lint",
                str(good),
                str(bad),
                "-k",
                "2",
                "--fail-on",
                "never",
                "--stats-json",
                str(stats),
            ]
        )
        assert status == 1
        captured = capsys.readouterr()
        assert f"== {good} ==" in captured.out
        assert "error" in captured.err
        document = json.loads(stats.read_text())
        assert document["parse_errors"] == 1
        entries = {e["file"]: e for e in document["files"]}
        assert "parse_error" in entries[str(bad)]
