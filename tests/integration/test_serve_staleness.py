"""Staleness safety: a query after a delta is never answered from the
pre-edit solution.

The dangerous window is a delta landing *while a solve is in flight*:
the solver snapshotted version N, version N+1 arrived before the
solution was installed.  ``ServeSession._midsolve_hook`` lands deltas
inside that window deterministically; the tests then pin that the
answer matches a fresh batch solve of the same final text — same
query answers, same program aliases, same fact set.
"""

import json

import pytest

from repro.frontend.diagnostics import MiniCError
from repro.io import solution_to_dict
from repro.serve import ServeSession

PROGRAM_V1 = """
int g;
int h;
int *p;

void main(void) {
    p = &g;
}
"""

#: The edit flips the points-to target: ``*p`` aliases ``h``, not ``g``.
PROGRAM_V2 = PROGRAM_V1.replace("p = &g;", "p = &h;")

#: The line of the assignment in both versions.
ASSIGN_LINE = 7


def fact_set(solution):
    """The solution's facts as a canonical, order-independent set."""
    document = solution_to_dict(solution)
    return sorted(
        json.dumps(fact, sort_keys=True) for fact in document["facts"]
    )


def fresh_solve(text, tmp_path, name):
    """A cold batch solve of ``text`` in an unrelated session."""
    fresh = ServeSession(k=3, cache_dir=str(tmp_path / name))
    fresh.upsert("fresh.c", text)
    return fresh.ensure_solved("fresh.c").solution


@pytest.fixture()
def session(tmp_path):
    return ServeSession(k=3, cache_dir=str(tmp_path / "cache"))


class TestSequentialStaleness:
    def test_query_reflects_latest_delta(self, session):
        session.upsert("a.c", PROGRAM_V1)
        assert session.query("a.c", ASSIGN_LINE, "*p", "g")["may_alias"] is True
        session.upsert("a.c", PROGRAM_V2)
        answer = session.query("a.c", ASSIGN_LINE, "*p", "g")
        assert answer["may_alias"] is False
        assert answer["version"] == 1
        assert session.query("a.c", ASSIGN_LINE, "*p", "h")["may_alias"] is True

    def test_edit_then_revert_round_trips(self, session):
        session.upsert("a.c", PROGRAM_V1)
        before = session.query("a.c", ASSIGN_LINE, "*p", "g")["may_alias"]
        session.upsert("a.c", PROGRAM_V2)
        session.query("a.c", ASSIGN_LINE, "*p", "g")
        session.upsert("a.c", PROGRAM_V1)
        after = session.query("a.c", ASSIGN_LINE, "*p", "g")["may_alias"]
        assert before is True and after is True


class TestMidSolveDelta:
    def test_delta_during_solve_forces_resolve(self, session, tmp_path):
        """The canonical race: v2 lands while v1 is being solved."""
        session.upsert("a.c", PROGRAM_V1)
        landed = []

        def land_v2_once(path, version):
            if not landed:
                landed.append(version)
                session.upsert(path, PROGRAM_V2)

        session._midsolve_hook = land_v2_once
        answer = session.query("a.c", ASSIGN_LINE, "*p", "g")
        # The answer must be v2's, even though v1's solve ran first.
        assert answer["may_alias"] is False
        assert answer["version"] == 1
        assert session.metrics.stale_retries_total >= 1
        assert landed == [0]

        doc = session.documents["a.c"]
        fresh = fresh_solve(PROGRAM_V2, tmp_path, "fresh-v2")
        assert fact_set(doc.solution) == fact_set(fresh)

    def test_delta_storm_settles_on_final_text(self, session, tmp_path):
        """Several deltas landing mid-solve: only the last text wins."""
        session.upsert("a.c", PROGRAM_V1)
        queue = [PROGRAM_V2, PROGRAM_V1, PROGRAM_V2]

        def land_next(path, version):
            if queue:
                session.upsert(path, queue.pop(0))

        session._midsolve_hook = land_next
        answer = session.query("a.c", ASSIGN_LINE, "*p", "h")
        assert answer["may_alias"] is True
        assert answer["version"] == 3
        assert not queue
        doc = session.documents["a.c"]
        fresh = fresh_solve(PROGRAM_V2, tmp_path, "fresh-storm")
        assert fact_set(doc.solution) == fact_set(fresh)

    def test_broken_snapshot_superseded_midsolve(self, session):
        """A parse error in a snapshot that was already replaced must
        not surface — the replacement is what gets solved."""
        session.upsert("a.c", "void main(void) { broken }")

        def fix_it(path, version):
            if version == 0:
                session.upsert(path, PROGRAM_V2)

        session._midsolve_hook = fix_it
        answer = session.query("a.c", ASSIGN_LINE, "*p", "h")
        assert answer["may_alias"] is True
        assert session.documents["a.c"].parse_error is None

    def test_broken_final_text_still_raises(self, session):
        session.upsert("a.c", "void main(void) { broken }")
        with pytest.raises(MiniCError):
            session.query("a.c", 1)


class TestBatchEquivalence:
    def test_incremental_equals_fresh_batch(self, session, tmp_path):
        """After a chain of edits, the resident solution is identical
        to a cold solve of the final text: same fact set, same program
        aliases, same query answers."""
        session.upsert("a.c", PROGRAM_V1)
        session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM_V2)
        session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM_V1)
        doc = session.ensure_solved("a.c")

        fresh = fresh_solve(PROGRAM_V1, tmp_path, "fresh-final")
        assert fact_set(doc.solution) == fact_set(fresh)
        assert sorted(map(str, doc.solution.program_aliases())) == sorted(
            map(str, fresh.program_aliases())
        )

    def test_cache_replay_solution_is_identical(self, tmp_path):
        """Two sessions sharing one cache directory: the second's
        fully-replayed solve equals the first's cold solve bit for
        bit at the fact level."""
        cache_dir = str(tmp_path / "shared")
        first = ServeSession(k=3, cache_dir=cache_dir)
        first.upsert("a.c", PROGRAM_V1)
        cold = first.ensure_solved("a.c").solution

        second = ServeSession(k=3, cache_dir=cache_dir)
        second.upsert("a.c", PROGRAM_V1)
        warm_doc = second.ensure_solved("a.c")
        assert fact_set(warm_doc.solution) == fact_set(cold)
        assert second.cache.counters.hits >= 1
