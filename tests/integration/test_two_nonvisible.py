"""The two-assumption exit mechanism, isolated (paper §4.3/§4.4).

Unlike Figure 1 (where a later caller-side assignment re-derives the
alias), these programs make the two-assumption join the *only* way to
discover the alias — a regression guard for the token-normalized
back-bind lookup.
"""

import pytest

from repro import analyze_source
from repro.interp import validate_soundness
from repro.names import AliasPair, ObjectName


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    name = ObjectName(text)
    for _ in range(stars):
        name = name.deref()
    return name


SRC = """
int *g0, g1;
void link(void) { g0 = &g1; }
int main() {
    int **m0, *m2;
    m0 = &g0;       /* *m0 == g0 */
    m2 = &g1;       /* *m2 == g1 */
    link();         /* callee creates **m0 == *m2, invisible to it */
    return 0;
}
"""


class TestTwoNonvisibleJoin:
    def test_alias_created_between_two_caller_locals(self):
        sol = analyze_source(SRC, k=2)
        ret = next(
            node for node in sol.icfg.nodes if node.kind.value == "return"
        )
        assert sol.alias_query(ret, n("**main::m0"), n("*main::m2")), sorted(
            str(p) for p in sol.may_alias(ret)
        )

    def test_counted_possibly_imprecise(self):
        sol = analyze_source(SRC, k=2)
        assert sol.percent_yes() < 100.0

    def test_dynamic_soundness(self):
        report = validate_soundness(SRC, k=2)
        assert report.ok, [str(v) for v in report.violations[:3]]

    def test_also_at_k1_via_truncation(self):
        sol = analyze_source(SRC, k=1)
        ret = next(
            node for node in sol.icfg.nodes if node.kind.value == "return"
        )
        assert sol.alias_query(ret, n("**main::m0"), n("*main::m2"))

    def test_nested_call_chain(self):
        # The tokens must survive an extra call layer.
        nested = """
        int *g0, g1;
        void deep(void) { g0 = &g1; }
        void shallow(void) { deep(); }
        int main() {
            int **m0, *m2;
            m0 = &g0;
            m2 = &g1;
            shallow();
            return 0;
        }
        """
        sol = analyze_source(nested, k=2)
        exit_main = sol.icfg.exit_of("main")
        assert sol.alias_query(exit_main, n("**main::m0"), n("*main::m2"))
        report = validate_soundness(nested, k=2)
        assert report.ok

    def test_no_spurious_pair_without_callee_link(self):
        clean = """
        int *g0, g1;
        void nop(void) { }
        int main() {
            int **m0, *m2;
            m0 = &g0;
            m2 = &g1;
            nop();
            return 0;
        }
        """
        sol = analyze_source(clean, k=2)
        exit_main = sol.icfg.exit_of("main")
        assert not sol.alias_query(exit_main, n("**main::m0"), n("*main::m2"))
