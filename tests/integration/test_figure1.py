"""Integration test: the paper's Figure 1 program, end to end.

The paper uses this program to illustrate both the ICFG structure and
the two hard cases of interprocedural aliasing:

* the first call of ``p`` creates ``(**l1, g2)`` in ``main`` even
  though ``l1`` is not in the scope of ``p`` (one non-visible name);
* the second call creates ``(**l1, *l2)`` even though *neither* name
  is visible in ``p`` (the two-assumption exit case).
"""

import pytest

from repro import analyze_source
from repro.icfg import NodeKind
from repro.names import AliasPair, ObjectName
from repro.programs.fixtures import FIGURE1


@pytest.fixture(scope="module")
def solution():
    return analyze_source(FIGURE1, k=3)


def name(text):
    """Parse 'l1:**' style shorthand: base plus leading stars."""
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    result = ObjectName(text)
    for _ in range(stars):
        result = result.deref()
    return result


G1 = name("g1")
G2 = name("g2")
STAR_G1 = name("*g1")
L1 = name("main::l1")
L2 = name("main::l2")


def nodes_of_kind(solution, kind, proc=None):
    return [
        n
        for n in solution.icfg.nodes
        if n.kind is kind and (proc is None or n.proc == proc)
    ]


class TestIcfgShape:
    def test_icfg_matches_figure(self, solution):
        icfg = solution.icfg
        assert set(icfg.procs) == {"p", "main"}
        assert len(nodes_of_kind(solution, NodeKind.CALL)) == 2
        assert len(nodes_of_kind(solution, NodeKind.RETURN)) == 2

    def test_exit_p_flows_to_both_returns(self, solution):
        exit_p = solution.icfg.exit_of("p")
        assert len(exit_p.succs) == 2
        assert all(s.kind is NodeKind.RETURN for s in exit_p.succs)

    def test_calls_flow_to_entry_p(self, solution):
        entry_p = solution.icfg.entry_of("p")
        for call in nodes_of_kind(solution, NodeKind.CALL):
            assert entry_p in call.succs


class TestAliases:
    def _return_sites(self, solution):
        rets = nodes_of_kind(solution, NodeKind.RETURN, "main")
        return sorted(rets, key=lambda n: n.nid)

    def test_first_call_creates_one_nonvisible_alias(self, solution):
        first_return = self._return_sites(solution)[0]
        pairs = solution.may_alias(first_return)
        assert AliasPair(L1.deref().deref(), G2) in pairs, sorted(map(str, pairs))

    def test_second_call_creates_two_nonvisible_alias(self, solution):
        second_return = self._return_sites(solution)[1]
        pairs = solution.may_alias(second_return)
        assert AliasPair(L1.deref().deref(), L2.deref()) in pairs

    def test_before_any_call_no_nonvisible_aliases(self, solution):
        # Right after l2 = &g2 (first statement) only (g2, *l2) holds.
        assigns = [
            n
            for n in solution.icfg.nodes
            if n.proc == "main" and n.is_pointer_assignment
        ]
        first = min(assigns, key=lambda n: n.nid)
        assert solution.may_alias(first) == {AliasPair(G2, L2.deref())}

    def test_g1_g2_alias_inside_p(self, solution):
        node = next(
            n for n in solution.icfg.nodes if n.proc == "p" and n.is_pointer_assignment
        )
        assert AliasPair(STAR_G1, G2) in solution.may_alias(node)

    def test_alias_query_api(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert solution.alias_query(exit_main, L1.deref().deref(), L2.deref())
        assert not solution.alias_query(exit_main, G1, G2)

    def test_program_alias_count_small(self, solution):
        # The precise solution for this program is small; guard against
        # blowups from future changes.
        assert len(solution.program_aliases()) <= 10

    def test_percent_yes_reflects_two_nv_taint(self, solution):
        # The two-assumption derivation is counted possibly-imprecise,
        # so %YES is below 100 but still high.
        assert 80.0 < solution.percent_yes() < 100.0
