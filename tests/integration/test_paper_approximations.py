"""The paper's four approximation sources (§5), as executable tests.

Each test builds the exact scenario §5 describes and checks both the
safety side (the possibly-spurious alias IS reported — the algorithm
"errs conservatively") and the accounting side (%YES notices).
"""

import pytest

from repro import analyze_source
from repro.names import AliasPair, DEREF, ObjectName


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    parts = text.split("->")
    name = ObjectName(parts[0])
    for part in parts[1:]:
        name = name.deref().field(part)
    for _ in range(stars):
        name = name.deref()
    return name


class TestApproximation1KLimiting:
    """k-limiting: deep chains are represented, not lost."""

    def test_deep_chain_represented(self):
        sol = analyze_source(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """,
            k=1,
        )
        exit_main = sol.icfg.exit_of("main")
        deep_p = ObjectName("p").extend((DEREF, "next", DEREF, "next"))
        deep_q = ObjectName("q").extend((DEREF, "next", DEREF, "next"))
        # Far beyond k=1, still answered via truncated representatives.
        assert sol.alias_query(exit_main, deep_p, deep_q)

    def test_k_limiting_not_counted_as_imprecision(self):
        sol = analyze_source(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """,
            k=1,
        )
        assert sol.percent_yes() == 100.0


class TestApproximation2SamePath:
    """p = x with (p, *q) and (*x, *y) on *different* paths: the
    algorithm concludes (**q, *y) anyway (safe), and counts it."""

    SRC = """
    int *x, **q, *p, *y, a, b, c;
    int main() {
        y = &a;
        if (c) { q = &p; }        /* (p, *q) on one path */
        if (c) { x = y; }         /* (*x, *y) on another */
        p = x;
        return 0;
    }
    """

    def test_spurious_alias_reported_safely(self):
        sol = analyze_source(self.SRC)
        assign = next(
            node
            for node in sol.icfg.nodes
            if node.is_pointer_assignment and "p = x" in node.label()
        )
        assert sol.alias_query(assign, n("**q"), n("*y"))

    def test_counted_as_possibly_imprecise(self):
        sol = analyze_source(self.SRC)
        assert sol.percent_yes() < 100.0


class TestApproximation3KilledOnAllPaths:
    """(p, *q) holds on every path; assigning p rebinds **q, yet the
    old (**q, *z) alias is preserved (safe) and counted."""

    SRC = """
    int **q, *p, *z, *x, a, b;
    int main() {
        q = &p;          /* (p, *q) unconditionally */
        p = &a;
        z = p;           /* (**q, *z) both name a */
        x = &b;
        p = x;           /* rebinding kills on every path */
        return 0;
    }
    """

    def test_preserved_conservatively(self):
        sol = analyze_source(self.SRC)
        last = next(
            node
            for node in sol.icfg.nodes
            if node.is_pointer_assignment and "p = x" in node.label()
        )
        assert sol.alias_query(last, n("**q"), n("*z"))

    def test_counted(self):
        sol = analyze_source(self.SRC)
        assert sol.percent_yes() < 100.0


class TestApproximation4TwoLhsAliases:
    """The paper's p.n = v->n->n scenario: two distinct aliases of the
    assignment's LHS prefix make the derived chain alias uncertain."""

    SRC = """
    struct node { int v; struct node *n; };
    struct node *p, *u, *v1, *m, c;
    int main() {
        if (c.v) { u = p; }            /* (p, *&u...) ~ (*p, *u) */
        if (c.v) { v1 = p; }           /* second alias of p */
        p->n = v1->n->n;
        return 0;
    }
    """

    def test_derived_alias_reported(self):
        sol = analyze_source(self.SRC, k=3)
        assign = next(
            node
            for node in sol.icfg.nodes
            if node.is_pointer_assignment and "p->n" in str(node.stmt.lhs)
        )
        # (*(u->n), *(v1->n->n)) should be reported (safely).
        assert sol.alias_query(
            assign,
            n("u->n").deref(),
            n("v1->n->n").deref(),
        )

    def test_counted(self):
        sol = analyze_source(self.SRC, k=3)
        assert sol.percent_yes() < 100.0


class TestWorstCaseClaim:
    """§5: all-or-none is the algorithm's worst case — the clean run
    must NOT exhibit the cubic blowup."""

    def test_clean_all_or_none_linear(self):
        from repro.programs import all_or_none

        counts = []
        for size in (4, 8):
            sol = analyze_source(all_or_none(size))
            counts.append(sol.stats().node_alias_count)
        assert counts[1] <= counts[0] * 3  # linear-ish, not cubic

    def test_seeded_all_or_none_blows_up(self):
        from repro.programs import all_or_none

        counts = []
        for size in (4, 8):
            sol = analyze_source(all_or_none(size, seed_alias=True))
            counts.append(sol.stats().node_alias_count)
        assert counts[1] >= counts[0] * 4  # superquadratic growth
