"""End-to-end: ``--jobs`` / ``--cache-dir`` on the CLI, the ``repro
cache`` subcommand, and the cross-job determinism guarantee.

Determinism is checked the strong way: the stats documents of runs at
different job counts must be *equal* after stripping wall-clock fields
(``repro.core.metrics.strip_timing``) — not merely similar.
"""

import json

import pytest

from repro.cli import main
from repro.core.metrics import strip_timing
from repro.difftest.harness import DifftestConfig, run_difftest_suite
from repro.programs.fixtures import FIGURE1

pytestmark = pytest.mark.parallel

#: Small but non-trivial: calls, globals, pointer-dense.
SWEEP_SEEDS = [1, 2, 3]
SWEEP_CONFIG = dict(k=2, draws=4)


def _suite_stats(jobs, cache_dir=None):
    config = DifftestConfig(**SWEEP_CONFIG)
    suite = run_difftest_suite(
        SWEEP_SEEDS, config, jobs=jobs, cache_dir=cache_dir
    )
    return suite.stats_dict()


class TestJobsDeterminism:
    def test_difftest_suite_stats_equal_across_job_counts(self):
        docs = [strip_timing(_suite_stats(jobs)) for jobs in (1, 2, 4)]
        assert docs[0] == docs[1] == docs[2]
        assert docs[0]["programs"] == len(SWEEP_SEEDS)
        assert docs[0]["failures"] == 0
        assert docs[0]["degraded_shards"] == 0
        # The aggregated engine block is part of the guarantee.
        assert docs[0]["engine"]["worklist_pops"] > 0

    def test_analyze_single_file_output_equal_across_job_counts(
        self, tmp_path, capsys
    ):
        path = tmp_path / "fig1.c"
        path.write_text(FIGURE1)

        def run(jobs):
            assert main([str(path), "-k", "2", "--jobs", str(jobs)]) == 0
            out = capsys.readouterr().out
            # Drop the wall-clock line and the engine-counter line (the
            # sliced solve legitimately pops more).
            return [
                line
                for line in out.splitlines()
                if not line.startswith(("analysis time:", "worklist:"))
            ]

        assert run(1) == run(2) == run(4)


class TestSummaryEngineDeterminism:
    """PR 7: ``--engine summary`` returns *byte-identical* solutions
    for every job count (strict-barrier rounds; see the solver module
    docstring), a stronger guarantee than the sliced path's
    equal-answers contract."""

    def test_summary_solutions_byte_identical_across_job_counts(self):
        from repro.frontend.semantics import parse_and_analyze
        from repro.icfg.builder import build_icfg
        from repro.io import solution_to_dict
        from repro.programs import ProgramSpec, generate_program
        from repro.summaries.solver import solve_summary

        source = generate_program(ProgramSpec("summary-par", seed=2))
        documents = []
        for jobs in (1, 2, 4):
            # A fresh parse per run: repeated ICFG builds over one
            # analyzed program shift the temp-name uniquifiers, which
            # would fail the byte comparison for reasons that have
            # nothing to do with scheduling.
            analyzed = parse_and_analyze(source)
            icfg = build_icfg(analyzed)
            solution = solve_summary(
                analyzed, icfg, k=2, jobs=jobs, oversubscribe=True
            )
            assert solution.complete
            documents.append(
                json.dumps(solution_to_dict(solution, packed=True), sort_keys=True)
            )
        assert documents[0] == documents[1] == documents[2]

    def test_summary_cli_stats_equal_across_job_counts(self, tmp_path, capsys):
        path = tmp_path / "fig1.c"
        path.write_text(FIGURE1)

        def run(jobs):
            stats_path = tmp_path / f"stats{jobs}.json"
            code = main(
                [
                    str(path),
                    "-k",
                    "2",
                    "--engine",
                    "summary",
                    "--jobs",
                    str(jobs),
                    "--stats-json",
                    str(stats_path),
                ]
            )
            assert code == 0
            capsys.readouterr()
            return strip_timing(json.loads(stats_path.read_text()))

        assert run(1) == run(2) == run(4)


class TestWarmCache:
    def test_warm_difftest_rerun_skips_all_solves(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = _suite_stats(jobs=1, cache_dir=cache_dir)
        warm = _suite_stats(jobs=2, cache_dir=cache_dir)

        assert cold["cache"]["hit"] == 0
        assert cold["cache"]["miss"] == len(SWEEP_SEEDS)
        # ISSUE acceptance: a warm rerun skips >= 90% of solves; here
        # every complete solution comes back from the cache.
        assert warm["cache"]["hit"] == len(SWEEP_SEEDS)
        assert warm["cache"]["miss"] == 0
        assert warm["cache"]["hit_rate"] == 1.0

        # Warm results are byte-identical to cold modulo timing.
        assert strip_timing({**cold, "cache": None}) == strip_timing(
            {**warm, "cache": None}
        )

    def test_analyze_cache_roundtrip_cli(self, tmp_path, capsys):
        path = tmp_path / "fig1.c"
        path.write_text(FIGURE1)
        cache_dir = str(tmp_path / "cache")
        args = [str(path), "-k", "2", "--cache-dir", cache_dir]

        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out

        strip = lambda text: [
            line
            for line in text.splitlines()
            if not line.startswith("analysis time:")
        ]
        assert strip(cold) == strip(warm)


class TestMultiFileSweeps:
    def test_analyze_sweep_prints_one_line_per_file(self, tmp_path, capsys):
        paths = []
        for index in range(3):
            path = tmp_path / f"prog{index}.c"
            path.write_text(FIGURE1)
            paths.append(str(path))
        stats_file = tmp_path / "stats.json"
        code = main(
            paths + ["-k", "2", "--jobs", "2", "--stats-json", str(stats_file)]
        )
        assert code == 0
        out = capsys.readouterr().out
        for path in paths:
            assert any(line.startswith(f"{path}:") for line in out.splitlines())
        document = json.loads(stats_file.read_text())
        assert document["schema"] == "repro-stats-multi/1"
        assert len(document["files"]) == 3
        assert document["failed_shards"] == 0
        assert document["engine"]["worklist_pops"] > 0

    def test_lint_sweep_renders_every_file(self, tmp_path, capsys):
        paths = []
        for index in range(2):
            path = tmp_path / f"prog{index}.c"
            path.write_text(FIGURE1)
            paths.append(str(path))
        code = main(["lint"] + paths + ["--jobs", "2", "--fail-on", "never"])
        assert code == 0
        out = capsys.readouterr().out
        for path in paths:
            assert f"== {path} ==" in out


class TestCacheSubcommand:
    def _populate(self, tmp_path, capsys):
        path = tmp_path / "fig1.c"
        path.write_text(FIGURE1)
        cache_dir = str(tmp_path / "cache")
        assert main([str(path), "-k", "2", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        return cache_dir

    def test_stats_clear_verify_flow(self, tmp_path, capsys):
        cache_dir = self._populate(tmp_path, capsys)

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == "repro-cache/1"
        assert stats["entries"] == 1

        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
        assert "0 problems" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "1 entries removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_verify_flags_a_tampered_entry(self, tmp_path, capsys):
        import base64

        from repro.cache.store import SolutionCache

        cache_dir = self._populate(tmp_path, capsys)
        (entry,) = list(SolutionCache(cache_dir).iter_paths())
        envelope = json.loads(entry.read_text())
        packed = envelope["solution"]["packed"]
        taint = bytearray(base64.b64decode(packed["taint"]))
        taint[0] ^= 1
        packed["taint"] = base64.b64encode(bytes(taint)).decode("ascii")
        entry.write_text(json.dumps(envelope))
        assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
        assert "1 problems" in capsys.readouterr().out
