"""Wide differential-testing sweep (extended profile).

Runs the full oracle/baseline lattice over generator-drawn programs.
Excluded from the default pytest profile (see the ``difftest`` marker
in pyproject.toml); run explicitly with::

    PYTHONPATH=src python -m pytest -m difftest

or via the CLI: ``repro difftest --seeds 200``.
"""

import pytest

from repro.difftest import DifftestConfig, run_difftest_suite


@pytest.mark.difftest
def test_generated_sweep_finds_no_violations():
    result = run_difftest_suite(
        range(1, 61), DifftestConfig(), stop_on_failure=False
    )
    assert result.ok, "\n\n".join(v.report() for v in result.failures)
    stats = result.stats_dict()
    # The sweep must actually exercise the lattice, not skip through it.
    assert stats["checks"]["dynamic_in_lr"]["ok"] > 0
    assert stats["exact_oracle_complete"] > 0


@pytest.mark.difftest
def test_budget_degradation_within_sweep():
    """A tight fact budget across the sweep must degrade every program
    to the taint-invariant check — never a false violation."""
    result = run_difftest_suite(
        range(1, 11),
        DifftestConfig(max_facts=50, draws=2, run_baselines=False),
        stop_on_failure=False,
    )
    assert result.ok, "\n\n".join(v.report() for v in result.failures)
