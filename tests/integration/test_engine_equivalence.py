"""Corpus-wide engine differential equivalence (PR 6 + PR 7).

Every fixture and generated program is solved by the reference, kernel
and bottom-up summary engines and the results compared on the
equivalence contract: identical fact sets (pair + assumption),
identical taint bits, identical per-node ``pairs_at`` answers.
Insertion order is not compared — the kernel's directed return join
reorders fact creation (see the kernel module docstring), and the
summary engine's merged store replays facts procedure-by-procedure.
"""

import pytest

from repro.core.kernel import KernelAnalysis
from repro.core.worklist import MayHoldAnalysis
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.programs import (
    ALL_FIXTURES,
    STRESS_FIXTURES,
    ProgramSpec,
    generate_program,
)
from repro.summaries.solver import solve_summary

# Fixtures cheap enough for the default profile; the heavyweights (the
# reference engine needs ~45s on string_table alone) run under -m slow.
FAST_FIXTURES = ["figure1", "linked_list", "expr_tree", "matrix_swap"]
SLOW_FIXTURES = ["string_table"]


def _assert_store_equal(icfg, left, right, left_name, right_name):
    left_map = dict(left.facts())
    right_map = dict(right.facts())
    assert set(left_map) == set(right_map), (
        f"fact sets differ: {len(left_map)} {left_name} "
        f"vs {len(right_map)} {right_name}"
    )
    taint_diffs = [f for f in left_map if left_map[f] != right_map[f]]
    assert not taint_diffs, f"taint differs on {len(taint_diffs)} facts"
    for node in icfg.nodes:
        assert left.pairs_at(node.nid) == right.pairs_at(node.nid)


def _assert_equivalent(source, k=3):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    reference = MayHoldAnalysis(analyzed, icfg, k=k).run()
    kernel = KernelAnalysis(analyzed, icfg, k=k).run()
    _assert_store_equal(icfg, reference, kernel, "reference", "kernel")


def _assert_summary_equivalent(source, k=3):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    kernel = KernelAnalysis(analyzed, icfg, k=k).run()
    summary = solve_summary(analyzed, icfg, k=k)
    _assert_store_equal(icfg, kernel, summary.store, "kernel", "summary")


@pytest.mark.parametrize("name", FAST_FIXTURES)
def test_fixture_engines_equivalent(name):
    _assert_equivalent(ALL_FIXTURES[name])


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_FIXTURES)
def test_heavy_fixture_engines_equivalent(name):
    _assert_equivalent(ALL_FIXTURES[name])


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
def test_stress_fixture_engines_equivalent(name):
    _assert_equivalent(STRESS_FIXTURES[name], k=2)


@pytest.mark.parametrize("seed", [2, 5])
def test_generated_program_engines_equivalent(seed):
    spec = ProgramSpec(f"eq-gen{seed}", seed=seed)
    _assert_equivalent(generate_program(spec))


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 3, 4])
def test_generated_program_engines_equivalent_slow(seed):
    spec = ProgramSpec(f"eq-gen{seed}", seed=seed)
    _assert_equivalent(generate_program(spec))


# scale800 is the BENCH_PR6 fixture (~480k facts; the reference engine
# needs ~70s).  scale400 is deliberately absent from the equivalence
# matrix: that generator shape saturates the k=3 pair universe (weak
# updates never kill, so the truncated-name pair universe floods) and
# does not converge in reasonable time on either engine.  The skip is
# guarded by test_scale400_saturates_pair_universe below.
@pytest.mark.slow
@pytest.mark.parametrize("target", [240, 800])
def test_scale_fixture_engines_equivalent(target):
    spec = ProgramSpec.for_target_nodes("scaling", target)
    _assert_equivalent(generate_program(spec))


def test_scale400_saturates_pair_universe():
    """Guard for the scale400 exclusion above: a budgeted k=3 solve
    must trip the fact ceiling almost immediately.  If this test ever
    fails because the solve *converges*, the pathology is gone —
    promote 400 into test_scale_fixture_engines_equivalent."""
    from repro.core.analysis import BudgetExceeded, analyze_program

    spec = ProgramSpec.for_target_nodes("scaling", 400)
    analyzed = parse_and_analyze(generate_program(spec))
    with pytest.raises(BudgetExceeded) as excinfo:
        analyze_program(analyzed, k=3, max_facts=150_000, on_budget="raise")
    assert excinfo.value.reason == "max_facts"


@pytest.mark.parametrize("k", [1, 2])
def test_equivalence_holds_across_k(k):
    _assert_equivalent(ALL_FIXTURES["figure1"], k=k)
    _assert_equivalent(ALL_FIXTURES["matrix_swap"], k=k)


# --- PR 7: the summary_eq_kernel edge on the same corpus ----------------


@pytest.mark.parametrize("name", FAST_FIXTURES)
def test_fixture_summary_equivalent(name):
    _assert_summary_equivalent(ALL_FIXTURES[name])


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_FIXTURES)
def test_heavy_fixture_summary_equivalent(name):
    _assert_summary_equivalent(ALL_FIXTURES[name])


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
def test_stress_fixture_summary_equivalent(name):
    _assert_summary_equivalent(STRESS_FIXTURES[name], k=2)


@pytest.mark.parametrize("seed", [2, 5])
def test_generated_program_summary_equivalent(seed):
    spec = ProgramSpec(f"eq-gen{seed}", seed=seed)
    _assert_summary_equivalent(generate_program(spec))


@pytest.mark.slow
@pytest.mark.parametrize("seed", [1, 3, 4])
def test_generated_program_summary_equivalent_slow(seed):
    spec = ProgramSpec(f"eq-gen{seed}", seed=seed)
    _assert_summary_equivalent(generate_program(spec))


@pytest.mark.slow
@pytest.mark.parametrize("target", [240, 800])
def test_scale_fixture_summary_equivalent(target):
    spec = ProgramSpec.for_target_nodes("scaling", target)
    _assert_summary_equivalent(generate_program(spec))


@pytest.mark.parametrize("k", [1, 2])
def test_summary_equivalence_holds_across_k(k):
    _assert_summary_equivalent(ALL_FIXTURES["figure1"], k=k)
    _assert_summary_equivalent(ALL_FIXTURES["matrix_swap"], k=k)
