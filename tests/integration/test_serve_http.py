"""The HTTP surface end-to-end, in-process: a real asyncio server on
an ephemeral port, a real socket client, no subprocesses.

Pins the wire contract docs/SERVE.md documents: routes, status codes,
JSON shapes, the metrics document — and that protocol-level abuse
(bad JSON, unknown routes, wrong methods) yields 4xx, never 5xx.
"""

import asyncio
import http.client
import json

import pytest

from repro.serve import ServeSession
from repro.serve.http import HttpServeServer

PROGRAM = """
int g;
int h;
int *p;

void main(void) {
    p = &g;
}
"""

PROGRAM_EDIT = PROGRAM.replace("p = &g;", "p = &h;")


def request(port, method, target, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(method, target, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


@pytest.fixture()
def server(tmp_path):
    """A started server + its port, torn down cleanly per test."""
    session = ServeSession(k=3, cache_dir=str(tmp_path / "cache"))
    loop = asyncio.new_event_loop()
    server = HttpServeServer(session, port=0)
    _host, port = loop.run_until_complete(server.start())

    import threading

    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        yield server, port
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30)
        loop.close()


class TestRoutes:
    def test_healthz(self, server):
        _server, port = server
        status, body = request(port, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["resident_programs"] == 0

    def test_analyze_then_query(self, server):
        _server, port = server
        status, body = request(
            port,
            "POST",
            "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM}]},
        )
        assert status == 200
        (entry,) = body["files"]
        assert entry["status"] == "ok"
        assert entry["stats"]["schema"] == "repro-stats/1"
        assert entry["serve"]["procs_total"] == 1

        status, body = request(
            port,
            "POST",
            "/v1/query",
            {"queries": [{"path": "a.c", "line": 7, "a": "*p", "b": "g"}]},
        )
        assert status == 200
        (answer,) = body["answers"]
        assert answer["may_alias"] is True

    def test_edit_changes_answer(self, server):
        _server, port = server
        request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM}]},
        )
        request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM_EDIT}]},
        )
        status, body = request(
            port,
            "POST",
            "/v1/query",
            {"queries": [{"path": "a.c", "line": 7, "a": "*p", "b": "g"}]},
        )
        assert status == 200
        assert body["answers"][0]["may_alias"] is False
        assert body["answers"][0]["version"] == 1

    def test_lint(self, server):
        _server, port = server
        status, body = request(
            port, "POST", "/v1/lint", {"path": "a.c", "text": PROGRAM}
        )
        assert status == 200
        assert body["path"] == "a.c"
        assert isinstance(body["findings"], list)

    def test_metrics_document(self, server):
        _server, port = server
        request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM}]},
        )
        status, body = request(port, "GET", "/metrics")
        assert status == 200
        assert body["schema"] == "repro-serve-stats/1"
        assert body["resident_programs"] == 1
        assert body["session"]["solves_total"] == 1
        assert body["requests"]["responses_5xx"] == 0
        assert body["latency"]["analyze"]["count"] == 1


class TestProtocolAbuse:
    """Every malformed input is a 4xx — and never poisons the server."""

    def test_unknown_route_404(self, server):
        _server, port = server
        status, body = request(port, "GET", "/nope")
        assert status == 404
        assert "error" in body

    def test_wrong_method_405(self, server):
        _server, port = server
        assert request(port, "POST", "/healthz", {})[0] == 405
        assert request(port, "GET", "/v1/analyze")[0] == 405

    def test_bad_json_400(self, server):
        _server, port = server
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            conn.request("POST", "/v1/analyze", body=b"this is not json")
            response = conn.getresponse()
            assert response.status == 400
            response.read()
        finally:
            conn.close()

    def test_empty_files_400(self, server):
        _server, port = server
        assert request(port, "POST", "/v1/analyze", {"files": []})[0] == 400

    def test_query_unknown_document_400(self, server):
        _server, port = server
        status, _ = request(
            port, "POST", "/v1/query",
            {"queries": [{"path": "missing.c", "line": 1}]},
        )
        assert status == 400

    def test_bad_expression_400(self, server):
        _server, port = server
        request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM}]},
        )
        status, _ = request(
            port, "POST", "/v1/query",
            {"queries": [{"path": "a.c", "line": 7, "a": "p[0]", "b": "g"}]},
        )
        assert status == 400

    def test_parse_error_is_not_5xx(self, server):
        _server, port = server
        status, body = request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "bad.c", "text": "void main(void) { ??? }"}]},
        )
        assert status == 200
        assert body["files"][0]["status"] == "parse_error"

    def test_no_5xx_after_abuse(self, server):
        _server, port = server
        request(port, "GET", "/nope")
        request(port, "POST", "/v1/analyze", {"files": []})
        _status, body = request(port, "GET", "/metrics")
        assert body["requests"]["responses_5xx"] == 0
        assert body["requests"]["responses_4xx"] >= 2
        # The server still works after the abuse.
        status, _ = request(
            port, "POST", "/v1/analyze",
            {"files": [{"path": "a.c", "text": PROGRAM}]},
        )
        assert status == 200
