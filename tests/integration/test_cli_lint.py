"""Integration tests for the ``repro lint`` subcommand, including the
tier-1 ``--self-check`` smoke required by the lint tooling config."""

import json
import pathlib

import pytest

from repro.cli import EXIT_LINT_FINDINGS, main
from repro.lint import validate_sarif

pytestmark = pytest.mark.lint

EXAMPLE = str(pathlib.Path(__file__).resolve().parents[2] / "examples" / "figure1.c")

BUGGY = (
    "int *mk() { int local; int *p; p = &local; return p; }"
    " int main() { int *q; int x; q = mk(); x = *q; return x; }"
)
CLEAN = "int main() { int *p, x; x = 3; p = &x; return *p; }"


@pytest.fixture()
def buggy_file(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


class TestLintCli:
    # ~15s: runs the full provider self-check sweep, which the unit
    # test_self_check_is_clean already covers and the CI soundness job
    # exercises through the real CLI.
    @pytest.mark.slow
    def test_self_check_smoke(self, capsys):
        assert main(["lint", "--self-check"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_findings_set_exit_code(self, buggy_file, capsys):
        assert main(["lint", buggy_file]) == EXIT_LINT_FINDINGS
        out = capsys.readouterr().out
        assert "dangling-escape" in out
        assert "buggy.c:" in out

    def test_fail_on_never_is_zero(self, buggy_file):
        assert main(["lint", buggy_file, "--fail-on", "never"]) == 0

    def test_clean_program_is_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_sarif_output_is_valid(self, capsys):
        assert main(["lint", EXAMPLE, "--format", "sarif", "--fail-on", "never"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"]

    def test_compare_weihl_tags_output(self, buggy_file, capsys):
        assert (
            main(["lint", buggy_file, "--compare-weihl"]) == EXIT_LINT_FINDINGS
        )
        out = capsys.readouterr().out
        assert "flow-insensitive" in out

    def test_stats_json_document(self, buggy_file, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        assert (
            main(
                [
                    "lint",
                    buggy_file,
                    "--stats-json",
                    str(stats_path),
                    "--fail-on",
                    "never",
                ]
            )
            == 0
        )
        stats = json.loads(stats_path.read_text())
        assert stats["schema"] == "repro-lint/1"
        assert stats["findings"] >= 1
        assert stats["rules"]["dangling-escape"] == 1

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("uninit-pointer-use", "dangling-escape", "null-deref"):
            assert rule in out

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(CLEAN))
        assert main(["lint", "-"]) == 0

    def test_parse_error_is_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert main(["lint", str(bad)]) == 1
        assert "error" in capsys.readouterr().err.lower()
