"""Whole-program integration scenarios with exact alias expectations."""

import pytest

from repro import analyze_source
from repro.names import AliasPair, ObjectName


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    parts = text.split("->")
    name = ObjectName(parts[0])
    for part in parts[1:]:
        name = name.deref().field(part)
    for _ in range(stars):
        name = name.deref()
    return name


def pair(a, b):
    return AliasPair(n(a), n(b))


class TestBranchMerging:
    def test_aliases_union_over_paths(self):
        sol = analyze_source(
            """
            int *p, a, b, c;
            int main() {
                if (c) { p = &a; } else { p = &b; }
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*p", "a") in pairs
        assert pair("*p", "b") in pairs
        assert pair("a", "b") not in pairs  # no invented transitivity

    def test_loop_fixpoint(self):
        sol = analyze_source(
            """
            int *p, *q, a, b;
            int main() {
                int i;
                p = &a;
                for (i = 0; i < 3; i = i + 1) {
                    q = p;
                    p = &b;
                }
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        # q copied p when p was &a (first iteration) or &b (later).
        assert pair("*q", "a") in pairs
        assert pair("*q", "b") in pairs
        assert pair("*p", "b") in pairs


class TestFlowSensitivity:
    def test_kill_separates_program_points(self):
        sol = analyze_source(
            """
            int *p, a, b;
            int main() {
                p = &a;
                p = &b;
                return 0;
            }
            """
        )
        assigns = sorted(
            (node for node in sol.icfg.nodes if node.is_pointer_assignment),
            key=lambda node: node.nid,
        )
        first, second = assigns
        assert pair("*p", "a") in sol.may_alias(first)
        assert pair("*p", "a") not in sol.may_alias(second)
        assert pair("*p", "b") in sol.may_alias(second)

    def test_interprocedural_kill(self):
        # The callee redirects the global; the old alias must not
        # survive the call on the only path.
        sol = analyze_source(
            """
            int *g, a, b;
            void redirect(void) { g = &b; }
            int main() { g = &a; redirect(); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*g", "b") in pairs
        assert pair("*g", "a") not in pairs


class TestStructsAndHeap:
    def test_shared_subobject(self):
        sol = analyze_source(
            """
            struct pair { int *fst; int *snd; };
            struct pair s;
            int a;
            int main() {
                s.fst = &a;
                s.snd = s.fst;
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*s->", "x") not in pairs  # sanity: no garbage names
        assert AliasPair(
            ObjectName("s").field("fst").deref(),
            ObjectName("s").field("snd").deref(),
        ) in pairs

    def test_malloc_sites_not_conflated(self):
        sol = analyze_source(
            """
            int *p, *q;
            int main() { p = malloc(4); q = malloc(4); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("*p", "*q") not in sol.may_alias(exit_main)

    def test_list_append_aliases_tail(self):
        sol = analyze_source(
            """
            struct node { int v; struct node *next; };
            struct node *head;
            int main() {
                struct node *tail;
                head = malloc(8);
                head->next = malloc(8);
                tail = head->next;
                return 0;
            }
            """,
            k=2,
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("*head->next", "*main::tail") in sol.may_alias(exit_main)


class TestAggregates:
    def test_array_elements_conflated(self):
        sol = analyze_source(
            """
            int *slots[4];
            int a, b;
            int main() {
                slots[0] = &a;
                slots[3] = &b;
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        # Both element writes land on the aggregate; neither kills.
        assert pair("*slots", "a") in pairs
        assert pair("*slots", "b") in pairs

    def test_pointer_arithmetic_stays_in_aggregate(self):
        sol = analyze_source(
            """
            int buf[8];
            int *p, *q;
            int main() {
                p = buf;
                q = p + 3;
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("*p", "*q") in sol.may_alias(exit_main)


class TestConditionalExpressions:
    def test_ternary_pointer_selection(self):
        sol = analyze_source(
            """
            int *p, a, b, c;
            int main() { p = c ? &a : &b; return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*p", "a") in pairs
        assert pair("*p", "b") in pairs

    def test_chained_assignment_aliases_all(self):
        sol = analyze_source(
            """
            int *p, *q, v;
            int main() { p = q = &v; return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*p", "v") in pairs
        assert pair("*q", "v") in pairs
        assert pair("*p", "*q") in pairs


class TestGotoAndSwitch:
    def test_goto_loop_converges(self):
        sol = analyze_source(
            """
            int *p, a, b;
            int main() {
                int i;
                i = 0;
                again:
                p = (i % 2) ? &a : &b;
                i = i + 1;
                if (i < 4) { goto again; }
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("*p", "a") in pairs
        assert pair("*p", "b") in pairs

    def test_switch_merges_cases(self):
        sol = analyze_source(
            """
            int *p, a, b, c, s;
            int main() {
                switch (s) {
                    case 1: p = &a; break;
                    case 2: p = &b; break;
                    default: p = &c;
                }
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        for target in ("a", "b", "c"):
            assert pair("*p", target) in pairs
