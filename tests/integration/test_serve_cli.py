"""``repro serve`` as a real subprocess: boot, announce, serve,
SIGTERM, flush.

The SIGTERM path is the satellite fix this PR carries in the CLI: a
terminated daemon must still write its ``--stats-json`` document
through the shared emission path, exactly like a clean exit would.
The tiny loadgen run at the end is the same code path CI's serve job
exercises at 200+ requests.
"""

import http.client
import json
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")

PROGRAM = "int g;\nint *p;\n\nvoid main(void) {\n    p = &g;\n}\n"


def boot(tmp_path, *extra):
    """Start a daemon on an ephemeral port; returns (process, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        cwd=str(tmp_path),
    )
    assert process.stderr is not None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        match = re.search(r"listening on http://127\.0\.0\.1:(\d+)", line or "")
        if match:
            return process, int(match.group(1))
        if process.poll() is not None:
            break
    process.kill()
    pytest.fail("daemon never announced its port")


def request(port, method, target, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(method, target, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


class TestServeSubprocess:
    def test_sigterm_flushes_stats_json(self, tmp_path):
        stats_path = tmp_path / "serve-stats.json"
        process, port = boot(
            tmp_path, "--stats-json", str(stats_path),
            "--cache-dir", str(tmp_path / "cache"),
        )
        try:
            status, _ = request(
                port, "POST", "/v1/analyze",
                {"files": [{"path": "a.c", "text": PROGRAM}]},
            )
            assert status == 200
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
        document = json.loads(stats_path.read_text())
        assert document["schema"] == "repro-serve-stats/1"
        assert document["requests"]["total"] >= 1
        assert document["session"]["solves_total"] == 1
        assert document["requests"]["responses_5xx"] == 0

    def test_serve_requires_a_surface(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            timeout=60,
        )
        assert result.returncode == 2
        assert "--port" in result.stderr

    def test_loadgen_smoke(self, tmp_path):
        """The CI serve gate in miniature: a seeded mixed workload,
        zero failures, scoped re-solves."""
        report_path = tmp_path / "loadgen.json"
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.serve.loadgen",
                "--requests", "12", "--programs", "1", "--functions", "4",
                "--seed", "7", "--json", str(report_path),
                "--cache-dir", str(tmp_path / "cache"),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            timeout=560,
        )
        assert result.returncode == 0, result.stderr
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro-serve-loadgen/1"
        assert sum(report["failures"].values()) == 0
        assert report["requests"] == 12
        assert report["cold"]["count"] == 1
        # Every edit touched only zz_probe: perfectly scoped.
        if report["server_metrics"]["session"]["post_edit_solves"]:
            assert report["edit_scoped_ratio"] == 1.0
