"""End-to-end CLI coverage for the must-alias engine: ``analyze
--must`` interval summaries, the ``lint --must`` possible→definite
upgrade all the way into SARIF, and the ``--fail-on definite`` exit
policy."""

import json
import pathlib

import pytest

from repro.cli import EXIT_LINT_FINDINGS, main
from repro.lint import validate_sarif

pytestmark = pytest.mark.lint

DEMO = str(
    pathlib.Path(__file__).resolve().parents[2]
    / "tests"
    / "corpus"
    / "must-upgrade-demo.c"
)

CLEAN = "int main() { int *p, x; x = 3; p = &x; return *p; }"


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


class TestAnalyzeMust:
    def test_summary_reports_interval(self, capsys):
        assert main(["analyze", DEMO, "--must"]) == 0
        out = capsys.readouterr().out
        assert "must pairs:" in out
        assert "interval width:" in out

    def test_per_node_lists_must_pairs(self, capsys):
        assert main(["analyze", DEMO, "--must", "--per-node"]) == 0
        assert "must: " in capsys.readouterr().out

    def test_without_flag_no_interval_lines(self, capsys):
        assert main(["analyze", DEMO]) == 0
        out = capsys.readouterr().out
        assert "must pairs:" not in out


class TestLintMust:
    def test_upgrade_is_visible_in_text(self, capsys):
        assert main(["lint", DEMO, "--must"]) == EXIT_LINT_FINDINGS
        out = capsys.readouterr().out
        assert "(definite)" in out
        assert "definite (every-path) finding" in out

    def test_without_must_null_deref_is_possible(self, capsys):
        # Without the must side the null-deref stays a warning, below
        # the default --fail-on error threshold: the upgrade is what
        # flips the exit code in test_upgrade_is_visible_in_text.
        assert main(["lint", DEMO]) == 0
        out = capsys.readouterr().out
        assert "definite (every-path)" not in out
        assert "warning: [null-deref]" in out

    def test_sarif_upgrade_end_to_end(self, capsys):
        assert (
            main(["lint", DEMO, "--must", "--format", "sarif", "--fail-on", "never"])
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert run["properties"]["mustEnabled"] is True
        assert run["properties"]["definiteFindings"] >= 1
        null_deref = [
            r for r in run["results"] if r["ruleId"] == "null-deref"
        ]
        assert null_deref
        assert all(
            r["properties"]["confidence"] == "definite" for r in null_deref
        )

    def test_sarif_without_must_is_possible(self, capsys):
        assert (
            main(["lint", DEMO, "--format", "sarif", "--fail-on", "never"]) == 0
        )
        doc = json.loads(capsys.readouterr().out)
        run = doc["runs"][0]
        assert run["properties"]["mustEnabled"] is False
        for result in run["results"]:
            if result["ruleId"] == "null-deref":
                assert result["properties"]["confidence"] == "possible"


class TestFailOnDefinite:
    def test_definite_findings_fail(self):
        # --fail-on definite implies --must.
        assert main(["lint", DEMO, "--fail-on", "definite"]) == EXIT_LINT_FINDINGS

    def test_clean_program_passes(self, clean_file):
        assert main(["lint", clean_file, "--fail-on", "definite"]) == 0

    def test_possible_only_report_passes(self, tmp_path):
        # One branch assigns, the other doesn't: the deref is only
        # possibly uninitialized, so no definite findings exist and
        # --fail-on definite comes back clean while the default
        # severity policy still fails.
        path = tmp_path / "maybe.c"
        path.write_text(
            "int g; int main() { int *p; int x;"
            " if (g) { p = &x; } x = *p; return x; }"
        )
        assert (
            main(["lint", str(path), "--fail-on", "warning"])
            == EXIT_LINT_FINDINGS
        )
        assert main(["lint", str(path), "--fail-on", "definite"]) == 0
