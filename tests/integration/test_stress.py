"""Stress-fixture tests (slow; run with ``pytest -m slow``).

These exercise the analysis's genuine worst case: pointer-dense
programs whose k-limited pair universe saturates (compare the paper's
`assembler` row — 1.26M aliases, 396 seconds, %YES = 10).
"""

import pytest

from repro import analyze_source
from repro.interp import validate_soundness
from repro.programs.fixtures import STRESS_FIXTURES

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
def test_stress_fixture_converges_k1(name):
    solution = analyze_source(STRESS_FIXTURES[name], k=1, max_facts=2_000_000)
    assert solution.stats().may_hold_facts > 0


@pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
def test_stress_fixture_sound_k1(name):
    report = validate_soundness(STRESS_FIXTURES[name], k=1, fuel=200_000)
    assert report.ok, [str(v) for v in report.violations[:5]]
