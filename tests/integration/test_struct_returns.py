"""Struct-valued parameters and returns (by-value aggregate copies)."""

import pytest

from repro import analyze_source
from repro.names import AliasPair, ObjectName


def field_deref(base, field):
    return ObjectName(base).field(field).deref()


class TestStructReturns:
    def test_returned_struct_copies_pointer_fields(self):
        sol = analyze_source(
            """
            struct handle { int *target; int tag; };
            int v;
            struct handle make(void) {
                struct handle h;
                h.target = &v;
                h.tag = 1;
                return h;
            }
            int main() {
                struct handle mine;
                mine = make();
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert sol.alias_query(
            exit_main, field_deref("main::mine", "target"), ObjectName("v")
        )

    def test_struct_parameter_copies_pointer_fields(self):
        sol = analyze_source(
            """
            struct handle { int *target; };
            int *g;
            void capture(struct handle h) { g = h.target; }
            int v;
            int main() {
                struct handle mine;
                mine.target = &v;
                capture(mine);
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert sol.alias_query(exit_main, ObjectName("g").deref(), ObjectName("v"))

    def test_nested_struct_copy(self):
        sol = analyze_source(
            """
            struct inner { int *p; };
            struct outer { struct inner one; struct inner two; };
            struct outer a, b;
            int v;
            int main() {
                a.one.p = &v;
                b = a;
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        b_one_p = ObjectName("b").field("one").field("p").deref()
        assert sol.alias_query(exit_main, b_one_p, ObjectName("v"))

    def test_struct_without_pointers_no_aliases(self):
        sol = analyze_source(
            """
            struct plain { int a; int b; };
            struct plain x, y;
            int main() { x = y; return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert sol.may_alias(exit_main) == set()

    def test_struct_return_through_temp_chain(self):
        sol = analyze_source(
            """
            struct handle { int *target; };
            int v;
            struct handle make(void) {
                struct handle h;
                h.target = &v;
                return h;
            }
            struct handle pass(void) { return make(); }
            int main() {
                struct handle mine;
                mine = pass();
                return 0;
            }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert sol.alias_query(
            exit_main, field_deref("main::mine", "target"), ObjectName("v")
        )
