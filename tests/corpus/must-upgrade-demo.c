// difftest-corpus: {"checks": ["must_subset_lr", "must_oracle", "lint_soundness"], "k": 3, "lines": 9, "origin": "must-engine demo: every-path null write through a must-aliased deref"}
// Reproduce: PYTHONPATH=src python -m repro.cli difftest --replay tests/corpus/must-upgrade-demo.c
// h must-points to p, so `*h = 0` writes NULL into p on every path and
// the final `*p` deref is definitely null.  This is the end-to-end
// possible->definite lint upgrade demo: `repro lint --must` reports
// null-deref as error/definite here, plain `repro lint` only
// warning/possible.  Replay pins the must engine's lattice edges
// (must_subset_lr, must_oracle) on the same shape.
int x;
int *p;
int **h;
void main(void) {
    h = &p;
    p = &x;
    *h = 0;
    x = *p;
}
