// difftest-corpus: {"checks": ["dynamic_in_lr", "exact_in_lr"], "k": 2, "lines": 12, "mutation": "AssignTransfer.intro disabled (Figure 2 alias introduction dropped)", "shrunk_from_lines": 86}
// Reproduce: PYTHONPATH=src python -m repro.cli difftest --replay tests/corpus/mutation-assign-intro.c
// Shrunk from generator seed 1 with the assignment alias-introduction
// transfer disabled; replays clean on a healthy engine.
int *g2;
struct node *g3;
struct node *f2(int a0) {
    { int it2;
        for (it2 = 0; it2 < 3; it2 = it2 + 1) {
            g2 = &a0;
        }
    }
}
int main() {
    g3 = f2(2);
}
