"""Property tests for the kernel's integer interning and fact columns.

Two layers are exercised: the dense-ID interning of names, pairs and
assumptions (ids are dense, stable and decode back to the interned
object), and the packed fact store (add / CLEAN-upgrade / iterate /
snapshot-during-mutation behave exactly like the reference
``MayHoldStore``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import KernelAnalysis
from repro.core.store import MayHoldStore
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.names import DEREF, AliasPair, ObjectName
from repro.programs import ALL_FIXTURES

bases = st.sampled_from(["p", "q", "g1", "main::l1", "$nv1", "$nv2"])
selectors = st.lists(
    st.sampled_from([DEREF, "next", "f"]), min_size=0, max_size=4
).map(tuple)
names = st.builds(
    lambda b, s, t: ObjectName(b, s, truncated=t),
    bases,
    selectors,
    st.booleans(),
)
pairs = st.builds(AliasPair, names, names).filter(lambda p: not p.is_trivial)
assumptions_ = st.lists(pairs, min_size=0, max_size=2).map(tuple)


def _fresh_kernel():
    analyzed = parse_and_analyze(ALL_FIXTURES["figure1"])
    icfg = build_icfg(analyzed)
    return KernelAnalysis(analyzed, icfg, k=3), icfg


class TestInterning:
    @given(st.lists(names, min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_name_ids_dense_stable_and_decodable(self, name_list):
        kernel, _ = _fresh_kernel()
        start = len(kernel._names)
        ids = [kernel._name_id(n) for n in name_list]
        # Stable: re-interning returns the same id.
        assert ids == [kernel._name_id(n) for n in name_list]
        # Dense: every id indexes the decode table.
        assert all(0 <= i < len(kernel._names) for i in ids)
        assert len(kernel._names) - start == len(set(name_list) - set(kernel._names[:start]))
        # Decodable: the table inverts the id map.
        for n, i in zip(name_list, ids):
            assert kernel._names[i] == n
        # Equal names (and only equal names) share an id.
        for a, ia in zip(name_list, ids):
            for b, ib in zip(name_list, ids):
                assert (ia == ib) == (a == b)

    @given(st.lists(pairs, min_size=1, max_size=15))
    @settings(max_examples=50)
    def test_pair_ids_decode_to_member_columns(self, pair_list):
        kernel, _ = _fresh_kernel()
        for p in pair_list:
            pid = kernel._pair_id(p)
            assert kernel._pairs[pid] == p
            assert kernel._names[kernel._pair_first[pid]] == p.first
            assert kernel._names[kernel._pair_second[pid]] == p.second
            assert kernel._pair_id(p) == pid

    @given(st.lists(assumptions_, min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_assumption_ids_decode_and_index_pairs_dedupe(self, aa_list):
        kernel, _ = _fresh_kernel()
        for aa in aa_list:
            aid = kernel._aa_id(aa)
            assert kernel._aas[aid] == aa
            assert kernel._aa_id(aa) == aid
            decoded = tuple(kernel._pairs[p] for p in kernel._aa_pairs[aid])
            assert decoded == aa
            index_pairs = kernel._aa_index_pairs[aid]
            assert len(index_pairs) == len(set(index_pairs))
            assert set(index_pairs) == set(kernel._aa_pairs[aid])

    def test_empty_assumption_is_id_zero(self):
        kernel, _ = _fresh_kernel()
        assert kernel._aa_id(()) == 0
        assert kernel._aas[0] == ()


# One op = (node offset, assumption, pair, clean).
ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9), assumptions_, pairs, st.booleans()),
    min_size=1,
    max_size=40,
)


class TestFactColumns:
    @given(ops)
    @settings(max_examples=60, deadline=None)
    def test_add_upgrade_iterate_matches_reference_store(self, op_list):
        kernel, icfg = _fresh_kernel()
        reference = MayHoldStore()
        n_nodes = len(icfg.nodes)
        for offset, assumption, pair, clean in op_list:
            nid = offset % n_nodes
            created_ref = reference.make_true(nid, assumption, pair, clean)
            created_ker = kernel.store.make_true(nid, assumption, pair, clean)
            assert created_ref == created_ker
        assert dict(reference.facts()) == dict(kernel.store.facts())
        assert len(reference) == len(kernel.store)
        for offset, assumption, pair, _ in op_list:
            nid = offset % n_nodes
            assert reference.holds(nid, assumption, pair)
            assert kernel.store.holds(nid, assumption, pair)
            assert reference.is_clean(nid, assumption, pair) == kernel.store.is_clean(
                nid, assumption, pair
            )
            assert reference.pairs_at(nid) == kernel.store.pairs_at(nid)
            assert set(reference.at_node(nid)) == set(kernel.store.at_node(nid))
            for name in (pair.first, pair.second):
                assert set(reference.at_node_with_name(nid, name)) == set(
                    kernel.store.at_node_with_name(nid, name)
                )
                assert set(reference.at_node_with_base(nid, name.base)) == set(
                    kernel.store.at_node_with_base(nid, name.base)
                )
            for assumed in assumption:
                assert set(reference.at_node_assuming(nid, assumed)) == set(
                    kernel.store.at_node_assuming(nid, assumed)
                )

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_taint_is_upgrade_only(self, op_list):
        # CLEAN is sticky: once a fact is certified it never reverts,
        # whatever later TAINTED re-derivations arrive.
        kernel, icfg = _fresh_kernel()
        n_nodes = len(icfg.nodes)
        ever_clean: set = set()
        for offset, assumption, pair, clean in op_list:
            nid = offset % n_nodes
            kernel.store.make_true(nid, assumption, pair, clean)
            if clean:
                ever_clean.add((nid, assumption, pair))
        for fact, clean in kernel.store.facts():
            assert clean == (fact in ever_clean)

    @given(ops)
    @settings(max_examples=40, deadline=None)
    def test_bucket_snapshot_stable_during_mutation(self, op_list):
        # Iterating a node's facts while inserting new ones must not
        # see (or be corrupted by) the concurrent growth — the store
        # snapshots the bucket at iteration start.
        kernel, icfg = _fresh_kernel()
        n_nodes = len(icfg.nodes)
        for offset, assumption, pair, clean in op_list:
            kernel.store.make_true(offset % n_nodes, assumption, pair, clean)
        nid = op_list[0][0] % n_nodes
        before = list(kernel.store.at_node(nid))
        seen = []
        extra = AliasPair(
            ObjectName("snapshot$a").deref(), ObjectName("snapshot$b")
        )
        for i, item in enumerate(kernel.store.at_node(nid)):
            seen.append(item)
            if i == 0:
                kernel.store.make_true(nid, (), extra, False)
        assert seen == before
        assert ((), extra) in set(kernel.store.at_node(nid))

    @given(ops)
    @settings(max_examples=30, deadline=None)
    def test_taint_all_counts_demotions(self, op_list):
        kernel, icfg = _fresh_kernel()
        n_nodes = len(icfg.nodes)
        for offset, assumption, pair, clean in op_list:
            kernel.store.make_true(offset % n_nodes, assumption, pair, clean)
        clean_now = sum(1 for _, clean in kernel.store.facts() if clean)
        assert kernel.store.taint_all() == clean_now
        assert all(not clean for _, clean in kernel.store.facts())
