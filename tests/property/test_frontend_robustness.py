"""Frontend robustness: arbitrary input produces structured errors,
never unstructured crashes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import MiniCError, parse, parse_and_analyze, tokenize
from repro.frontend.diagnostics import LexError


printable = st.text(
    alphabet=st.characters(min_codepoint=9, max_codepoint=126), max_size=200
)


@settings(max_examples=200, deadline=None)
@given(source=printable)
def test_lexer_total(source):
    try:
        tokens = tokenize(source)
    except LexError:
        return
    assert tokens[-1].kind.name == "EOF"


@settings(max_examples=200, deadline=None)
@given(source=printable)
def test_parser_structured_errors_only(source):
    try:
        parse(source)
    except MiniCError:
        pass  # lex/parse/unsupported errors are the contract


@settings(max_examples=100, deadline=None)
@given(source=printable)
def test_full_frontend_structured_errors_only(source):
    try:
        parse_and_analyze(source)
    except MiniCError:
        pass


# C-shaped fragments stress the parser deeper than raw text.
fragments = st.lists(
    st.sampled_from(
        [
            "int", "x", "*", ";", "{", "}", "(", ")", "=", "&",
            "if", "else", "while", "return", "struct", "->", ",",
            "1", "f", "[", "]", "++", "NULL", "+",
        ]
    ),
    max_size=40,
).map(" ".join)


@settings(max_examples=200, deadline=None)
@given(source=fragments)
def test_token_soup_structured_errors_only(source):
    try:
        parse_and_analyze(source)
    except MiniCError:
        pass
