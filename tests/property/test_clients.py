"""Property tests for the client analyses."""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import BudgetExceeded, analyze_source
from repro.clients import ConflictAnalysis, ModRefAnalysis, ReachingDefinitions
from repro.clients.accesses import node_access
from repro.programs import ProgramSpec, generate_program


def solution_for(seed):
    spec = ProgramSpec(
        name=f"cli{seed}",
        seed=seed,
        n_functions=3,
        n_globals=4,
        stmts_per_function=6,
    )
    try:
        return analyze_source(generate_program(spec), k=2, max_facts=300_000)
    except BudgetExceeded:
        # Rare pointer-dense draw; not the property under test.
        assume(False)


# ~60s of wall by itself: reorderable() is O(pairs-at-node) per query
# and the symmetry sweep makes 28 queries per example.  The cheaper
# conflict coverage in tests/unit/clients stays in the default profile.
@pytest.mark.slow
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=3_000))
def test_conflict_symmetric(seed):
    solution = solution_for(seed)
    analysis = ConflictAnalysis(solution)
    nodes = [n for n in solution.icfg.nodes if node_access(n).touches_memory][:8]
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            assert analysis.reorderable(a, b) == analysis.reorderable(b, a)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=3_000))
def test_reaching_defs_monotone_at_joins(seed):
    """IN of a node includes OUT of each predecessor's definitions that
    the node itself does not kill — spot-checked via def-use pairs
    being a subset of (defs x uses)."""
    solution = solution_for(seed)
    rd = ReachingDefinitions(solution)
    for pair in rd.def_use_pairs():
        assert pair.definition in rd.reaching(pair.use_node_id)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=3_000))
def test_modref_transitivity(seed):
    """A caller's MOD includes every callee's observable MOD."""
    solution = solution_for(seed)
    analysis = ModRefAnalysis(solution)
    from repro.icfg import NodeKind

    for node in solution.icfg.nodes:
        if node.kind is NodeKind.CALL and node.callee in solution.icfg.procs:
            callee_mod = analysis.mod(node.callee)
            caller_effects = analysis.proc_effects(node.proc)
            assert callee_mod <= caller_effects.mod


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=3_000))
def test_widened_modref_superset_of_unwidened(seed):
    solution = solution_for(seed)
    widened = ModRefAnalysis(solution, widen_with_aliases=True)
    plain = ModRefAnalysis(solution, widen_with_aliases=False)
    for proc in solution.icfg.procs:
        assert plain.mod(proc) <= widened.mod(proc)
        assert plain.ref(proc) <= widened.ref(proc)
