"""Cross-analysis properties: relationships the paper's evaluation
relies on, checked on generated programs.

* Weihl's flow-insensitive closure over-approximates the Landi/Ryder
  program aliases (Table 1's premise).
* Increasing k never loses aliases that a smaller k's representatives
  covered (k-limiting is a safe projection).
* %YES_k is a percentage and the analysis is deterministic.

These run in the default (tier-1) profile, so two things keep them
deterministic and budget-free where older revisions needed escape
hatches: the generator's depth/density knobs steer draws away from
the k-limiting saturation pathology, and ``derandomize=True`` pins the
hypothesis examples (the randomized deep fuzzing lives in the
slow-marked soundness suite and the difftest sweeps).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import analyze_source
from repro.baselines import weihl_aliases
from repro.difftest.harness import weihl_member_covered, weihl_pair_covered
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.core import analyze_program
from repro.names import AliasPair, k_limit
from repro.programs import ProgramSpec, generate_program


def small_source(seed):
    spec = ProgramSpec(
        name=f"rel{seed}",
        seed=seed,
        n_functions=3,
        n_globals=5,
        stmts_per_function=6,
        max_pointer_depth=1,
        pointer_density=0.85,
    )
    return generate_program(spec)


_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(max_examples=15, **_SETTINGS)
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_weihl_superset_of_lr_program_aliases(seed):
    """Weihl's flow-insensitive closure over-approximates LR.

    Compared on untruncated pairs only: at the k-limit frontier the two
    algorithms pick *different* family representatives (LR marks
    eagerly, Weihl's congruence materializes to k+1), so representative
    pairs are not one-to-one there.  Semantic containment at the
    frontier is covered by the dynamic-soundness suite; the coverage
    relation itself is shared with (and also exercised by) the
    difftest harness's ``lr_in_weihl`` check.
    """
    analyzed = parse_and_analyze(small_source(seed))
    icfg = build_icfg(analyzed)
    lr = analyze_program(analyzed, icfg, k=3, max_facts=600_000)
    weihl = weihl_aliases(analyzed, icfg, k=3)
    by_base: dict[str, list] = {}
    for wp in weihl.aliases:
        by_base.setdefault(wp.first.base, []).append(wp)
        if wp.second.base != wp.first.base:
            by_base.setdefault(wp.second.base, []).append(wp)
    missing = [
        pair
        for pair in lr.program_aliases()
        if not pair.first.truncated
        and not pair.second.truncated
        and pair not in weihl.aliases
        and not weihl_pair_covered(pair, by_base.get(pair.first.base, ()))
    ]
    assert not missing, [str(m) for m in missing[:5]]


def test_member_coverage_is_reflexive_and_prefix_aware():
    """Pin the shared coverage relation's semantics (imported by both
    this suite and the difftest harness)."""
    from repro.names import ObjectName

    plain = ObjectName("main::p", ("*",))
    deeper = ObjectName("main::p", ("*", "*"))
    trunc = ObjectName("main::p", ("*",), truncated=True)
    assert weihl_member_covered(plain, plain)
    assert weihl_member_covered(trunc, deeper)
    assert weihl_member_covered(deeper, trunc)
    assert not weihl_member_covered(plain, deeper)


@settings(max_examples=10, **_SETTINGS)
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_smaller_k_representatives_cover_larger_k(seed):
    source = small_source(seed)
    small = analyze_source(source, k=1, max_facts=600_000)
    large = analyze_source(source, k=2, max_facts=600_000)
    # Project the k=2 solution down to k=1 representatives; everything
    # must be covered by the k=1 solution's representatives.  Pairs
    # mentioning the nonvisible token are internal bookkeeping whose
    # granularity legitimately differs across k (they are instantiated
    # at returns); their external meaning is checked dynamically.
    for nid, pair in large.node_pairs():
        if pair.has_nonvisible:
            continue
        if pair.first.truncated or pair.second.truncated:
            # Truncated representatives at different k sit at different
            # frontiers (cycle closures especially); representative
            # pairs are not one-to-one across k.  The frontier is
            # validated dynamically by the soundness suite.
            continue
        projected = AliasPair(k_limit(pair.first, 1), k_limit(pair.second, 1))
        if projected.is_trivial:
            # Both members collapse onto the same k=1 representative
            # (cycle-closure pairs do this); the projection carries no
            # separate information at the smaller k.
            continue
        if projected.first.truncated or projected.second.truncated:
            # The projection itself crossed the k=1 frontier: the k=1
            # run may represent this family through a *different*
            # truncated representative (same frontier caveat as above).
            continue
        assert small.alias_query(nid, projected.first, projected.second), (
            nid,
            str(pair),
        )


@settings(max_examples=8, **_SETTINGS)
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_analysis_deterministic(seed):
    source = small_source(seed)
    first = analyze_source(source, k=2, max_facts=600_000)
    second = analyze_source(source, k=2, max_facts=600_000)
    assert set(first.node_pairs()) == set(second.node_pairs())
    assert first.percent_yes() == second.percent_yes()


@settings(max_examples=8, **_SETTINGS)
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_percent_yes_in_range(seed):
    solution = analyze_source(small_source(seed), k=2, max_facts=600_000)
    assert 0.0 <= solution.percent_yes() <= 100.0
