"""Cross-analysis properties: relationships the paper's evaluation
relies on, checked on generated programs.

* Weihl's flow-insensitive closure over-approximates the Landi/Ryder
  program aliases (Table 1's premise).
* Increasing k never loses aliases that a smaller k's representatives
  covered (k-limiting is a safe projection).
* %YES_k is a percentage and the analysis is deterministic.
"""

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import BudgetExceeded, analyze_source
from repro.baselines import weihl_aliases
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.core import analyze_program
from repro.names import AliasPair, k_limit
from repro.programs import ProgramSpec, generate_program


def small_source(seed):
    spec = ProgramSpec(
        name=f"rel{seed}",
        seed=seed,
        n_functions=3,
        n_globals=5,
        stmts_per_function=6,
    )
    return generate_program(spec)


def bounded(run):
    """Run an analysis thunk; discard the hypothesis example when the
    generated program saturates the budget.  A rare pointer-dense draw
    (e.g. seed=95 at k=3) produces millions of facts — a generator
    property, not the one under test here; stress coverage lives in
    tests/integration/test_stress.py."""
    try:
        return run()
    except BudgetExceeded:
        assume(False)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_weihl_superset_of_lr_program_aliases(seed):
    """Weihl's flow-insensitive closure over-approximates LR.

    Compared on untruncated pairs only: at the k-limit frontier the two
    algorithms pick *different* family representatives (LR marks
    eagerly, Weihl's congruence materializes to k+1), so representative
    pairs are not one-to-one there.  Semantic containment at the
    frontier is covered by the dynamic-soundness suite instead.
    """
    analyzed = parse_and_analyze(small_source(seed))
    icfg = build_icfg(analyzed)
    lr = bounded(
        lambda: analyze_program(
            analyzed, icfg, k=3, max_facts=400_000, deadline_seconds=30.0
        )
    )
    weihl = weihl_aliases(analyzed, icfg, k=3)
    by_base: dict[str, list] = {}
    for wp in weihl.aliases:
        by_base.setdefault(wp.first.base, []).append(wp)
        if wp.second.base != wp.first.base:
            by_base.setdefault(wp.second.base, []).append(wp)
    missing = [
        pair
        for pair in lr.program_aliases()
        if not pair.first.truncated
        and not pair.second.truncated
        and pair not in weihl.aliases
        and not _covered(pair, by_base.get(pair.first.base, ()))
    ]
    assert not missing, [str(m) for m in missing[:5]]


def _member_covered(weihl_name, lr_name):
    """Does a Weihl-side name cover an LR-side name?  Equal names, or
    either side's truncated representative standing for the other's
    family (representatives may sit at different truncation depths:
    the LR algorithm marks family representatives eagerly at the
    k-frontier, Weihl's congruence closure materializes to k+1)."""
    if weihl_name == lr_name:
        return True
    if weihl_name.truncated and weihl_name.is_prefix(lr_name):
        return True
    if lr_name.truncated and lr_name.is_prefix(weihl_name):
        return True
    return False


def _covered(pair, weihl_pairs):
    """A pair is covered if some Weihl pair represents it (truncated
    members stand for their extensions)."""
    for wp in weihl_pairs:
        for a, b in ((wp.first, wp.second), (wp.second, wp.first)):
            if _member_covered(a, pair.first) and _member_covered(b, pair.second):
                return True
    return False


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_smaller_k_representatives_cover_larger_k(seed):
    source = small_source(seed)
    small = bounded(lambda: analyze_source(source, k=1, max_facts=400_000))
    large = bounded(lambda: analyze_source(source, k=2, max_facts=400_000))
    # Project the k=2 solution down to k=1 representatives; everything
    # must be covered by the k=1 solution's representatives.  Pairs
    # mentioning the nonvisible token are internal bookkeeping whose
    # granularity legitimately differs across k (they are instantiated
    # at returns); their external meaning is checked dynamically.
    for nid, pair in large.node_pairs():
        if pair.has_nonvisible:
            continue
        if pair.first.truncated or pair.second.truncated:
            # Truncated representatives at different k sit at different
            # frontiers (cycle closures especially); representative
            # pairs are not one-to-one across k.  The frontier is
            # validated dynamically by the soundness suite.
            continue
        projected = AliasPair(k_limit(pair.first, 1), k_limit(pair.second, 1))
        if projected.is_trivial:
            # Both members collapse onto the same k=1 representative
            # (cycle-closure pairs do this); the projection carries no
            # separate information at the smaller k.
            continue
        assert small.alias_query(nid, projected.first, projected.second), (
            nid,
            str(pair),
        )


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_analysis_deterministic(seed):
    source = small_source(seed)
    first = bounded(lambda: analyze_source(source, k=2, max_facts=400_000))
    second = bounded(lambda: analyze_source(source, k=2, max_facts=400_000))
    assert set(first.node_pairs()) == set(second.node_pairs())
    assert first.percent_yes() == second.percent_yes()


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=5_000))
def test_percent_yes_in_range(seed):
    solution = bounded(lambda: analyze_source(small_source(seed), k=2, max_facts=400_000))
    assert 0.0 <= solution.percent_yes() <= 100.0
