"""Pretty-printer round trip: parse(print(parse(src))) == parse(src).

AST equality is checked structurally via a span-insensitive digest.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import parse
from repro.frontend import ast_nodes as ast
from repro.frontend.printer import print_program
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import ALL_FIXTURES

import pytest


def digest(node, out=None):
    """Structural digest ignoring spans/ctype/symbol annotations."""
    if out is None:
        out = []
    if isinstance(node, ast.Program):
        for decl in node.decls:
            digest(decl, out)
        return tuple(out)
    out.append(type(node).__name__)
    for field_name in getattr(node, "__dataclass_fields__", {}):
        if field_name in ("span", "ctype", "symbol"):
            continue
        value = getattr(node, field_name)
        if isinstance(value, (ast.Expr, ast.Stmt, ast.Node)) or (
            hasattr(value, "__dataclass_fields__")
        ):
            digest(value, out)
        elif isinstance(value, list):
            out.append(f"[{len(value)}")
            for item in value:
                if hasattr(item, "__dataclass_fields__"):
                    digest(item, out)
                else:
                    out.append(repr(item))
            out.append("]")
        elif value is None or isinstance(value, (str, int, float, bool)):
            out.append(repr(value))
        else:
            out.append(str(value))
    return tuple(out)


def roundtrips(source):
    first = parse(source)
    printed = print_program(first)
    second = parse(printed)
    assert digest(first) == digest(second), printed
    return printed


@pytest.mark.parametrize("name", sorted(ALL_FIXTURES))
def test_fixture_roundtrip(name):
    roundtrips(ALL_FIXTURES[name])


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_generated_roundtrip(seed):
    spec = ProgramSpec(
        name=f"pp{seed}", seed=seed, n_functions=3, n_globals=5, stmts_per_function=6
    )
    roundtrips(generate_program(spec))


def test_precedence_preserved():
    printed = roundtrips("int main() { x = (a + b) * c; return 0; }")
    assert "(a + b) * c" in printed


def test_ternary_nesting():
    roundtrips("int main() { x = a ? b : c ? d : e; return 0; }")


def test_pointer_declarations():
    printed = roundtrips("int **pp; int *arr[4]; int main() { return 0; }")
    assert "int **pp;" in printed
    assert "int *arr[4];" in printed
