"""Soundness of the must-alias under-approximation: every claimed
must pair must appear in the may solution of each of the three
equivalence-pinned may engines (reference worklist, integer-ID kernel,
bottom-up summaries), and must survive the dynamic per-path oracle.

Together with the may side's dynamic soundness suite this pins the
interval invariant: ``must ⊆ truth ⊆ may``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kernel import KernelAnalysis
from repro.core.solution import MayAliasSolution
from repro.core.worklist import MayHoldAnalysis
from repro.frontend import parse_and_analyze
from repro.icfg import IcfgBuilder
from repro.must import solve_must, validate_must_dynamic
from repro.names.context import NameContext
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import ALL_FIXTURES
from repro.summaries.solver import solve_summary

ENGINES = {
    "reference": lambda analyzed, icfg, k: MayHoldAnalysis(analyzed, icfg, k=k).run(),
    "kernel": lambda analyzed, icfg, k: KernelAnalysis(analyzed, icfg, k=k).run(),
    "summary": lambda analyzed, icfg, k: solve_summary(analyzed, icfg, k=k).store,
}

# Same generator shape as the may-side property suite: the knobs steer
# draws away from the k-limiting saturation pathology, derandomize
# pins the examples.
FUZZ_SPEC = dict(
    n_functions=3,
    n_globals=5,
    stmts_per_function=7,
    max_pointer_depth=1,
    pointer_density=0.85,
)

# Fixtures cheap enough to cross with all three engines in the default
# profile; string_table's reference solve alone needs ~45s at k=3, so
# its rows run under -m slow at k<=2 (the saturation note in
# tests/property/test_soundness.py applies here unchanged).
FAST_FIXTURES = ["figure1", "matrix_swap", "expr_tree"]
SLOW_FIXTURES = ["linked_list", "string_table"]


def _assert_must_subset(source, engine, k):
    analyzed = parse_and_analyze(source)
    icfg = IcfgBuilder(analyzed).build()
    must = solve_must(analyzed, icfg, k=k)
    may = MayAliasSolution(
        icfg,
        ENGINES[engine](analyzed, icfg, k),
        NameContext(analyzed.symbols, k),
        k,
    )
    checked = 0
    for node in icfg.nodes:
        for pair in must.must_pairs(node):
            checked += 1
            assert may.alias_query(node, pair.first, pair.second), (
                engine,
                node.nid,
                str(pair),
            )
    return checked


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("name", FAST_FIXTURES)
def test_fixture_must_subset_of_every_engine(name, engine):
    _assert_must_subset(ALL_FIXTURES[name], engine, k=2)


@pytest.mark.slow
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("name", SLOW_FIXTURES)
def test_heavy_fixture_must_subset_of_every_engine(name, engine):
    _assert_must_subset(ALL_FIXTURES[name], engine, k=2)


@pytest.mark.slow  # three full may solves per example
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=1, max_value=10_000),
    k=st.integers(min_value=1, max_value=3),
)
def test_generated_program_must_subset_of_every_engine(seed, k):
    spec = ProgramSpec(name=f"must{seed}", seed=seed, **FUZZ_SPEC)
    source = generate_program(spec)
    for engine in sorted(ENGINES):
        _assert_must_subset(source, engine, k=k)


@pytest.mark.slow  # interpreter fuzzing dominates
@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=1, max_value=10_000),
    k=st.integers(min_value=1, max_value=3),
)
def test_generated_program_must_claims_hold_dynamically(seed, k):
    spec = ProgramSpec(name=f"mustdyn{seed}", seed=seed, **FUZZ_SPEC)
    source = generate_program(spec)
    analyzed = parse_and_analyze(source)
    builder = IcfgBuilder(analyzed)
    icfg = builder.build()
    must = solve_must(analyzed, icfg, k=k)
    report = validate_must_dynamic(
        analyzed, builder, icfg, must, draws=4, fuel=60_000, max_derefs=k + 1
    )
    assert report.ok, ([str(v) for v in report.violations[:5]], source)
