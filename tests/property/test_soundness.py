"""Dynamic soundness: every alias observed by the concrete interpreter
must be predicted by the static may-alias solution.

This is the library's strongest correctness property — it exercises the
frontend, the lowerer, the interprocedural worklist and the concrete
interpreter together on randomly generated programs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.interp import validate_soundness
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import ALL_FIXTURES

FIXTURE_IDS = sorted(ALL_FIXTURES)

# string_table's bucket array makes k=3 two orders of magnitude more
# expensive (weak updates never kill, so the pair universe saturates);
# its deeper-k behaviour is covered by the stress suite.
_FIXTURE_MATRIX = [
    (name, k)
    for name in FIXTURE_IDS
    for k in ((1, 2) if name == "string_table" else (1, 2, 3))
]


@pytest.mark.parametrize(("name", "k"), _FIXTURE_MATRIX)
def test_fixture_soundness(name, k):
    report = validate_soundness(ALL_FIXTURES[name], k=k, fuel=200_000)
    assert report.ok, [str(v) for v in report.violations[:5]]
    assert report.checked_nodes > 0


# Two things let these run without the budget escape hatches older
# revisions needed: the generator's depth/density knobs steer draws
# away from the k-limiting saturation pathology (recursion + deep
# struct-pointer globals flooding the truncated-name universe), and
# ``derandomize=True`` pins the hypothesis examples — a verified draw
# stays verified, while randomized breadth lives in the difftest
# sweeps whose budgets degrade gracefully (on_budget="partial").
FUZZ_SPEC = dict(
    n_functions=3,
    n_globals=5,
    stmts_per_function=7,
    max_pointer_depth=1,
    pointer_density=0.85,
)


@pytest.mark.slow  # dominates the property suite (minutes of interpreter fuzzing)
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(min_value=1, max_value=10_000),
    k=st.integers(min_value=1, max_value=3),
)
def test_generated_program_soundness(seed, k):
    spec = ProgramSpec(name=f"fuzz{seed}", seed=seed, **FUZZ_SPEC)
    source = generate_program(spec)
    report = validate_soundness(source, k=k, fuel=60_000, max_facts=600_000)
    assert report.ok, (
        [str(v) for v in report.violations[:5]],
        source,
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=1, max_value=10_000))
def test_generated_program_analyzable(seed):
    """Generated programs always parse, check, lower and analyze —
    with the depth/density knobs, within budget."""
    from repro import analyze_source

    spec = ProgramSpec(name=f"gen{seed}", seed=seed, **FUZZ_SPEC)
    solution = analyze_source(generate_program(spec), k=2, max_facts=600_000)
    assert solution.stats().icfg_nodes > 0
