"""Property tests for the bottom-up summary layer (PR 7).

Three claims, each a piece of the summary engine's correctness
argument:

* **Instantiation = inlining.**  A callee summary instantiated at a
  call site must yield the same may-alias answers as re-solving the
  program with the callee's body textually inlined.  The synthetic
  programs keep every variable global so the two versions share one
  name space (no nonvisible tokens, no binding renames) and the claim
  is *exact* pair-set equality at main's exit.
* **SCC condensation is a valid bottom-up order.**  On arbitrary
  generated call graphs — self-recursion and mutual recursion
  included — ``tarjan_sccs`` must partition the nodes into the
  mutual-reachability classes and list them in reverse topological
  order (callees before callers), and ``build_call_graph``'s wave
  depths must respect every cross-component edge.
* **Summary = kernel on generated programs.**  The corpus sweep in
  ``tests/integration/test_engine_equivalence.py`` pins named seeds;
  here Hypothesis drives the generator's knobs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kernel import KernelAnalysis
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.programs import ProgramSpec, generate_program
from repro.summaries.callgraph import build_call_graph, tarjan_sccs
from repro.summaries.solver import solve_summary

_SETTINGS = dict(
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

# --- instantiation = inlining -------------------------------------------

# Well-typed statements over a fixed global environment:
#   int *g1, *g2, *g3;  int **h1, **h2;  int x, y;
_DECLS = "int *g1, *g2, *g3;\nint **h1, **h2;\nint x, y;\n"
_STMT_POOL = [
    "g1 = &x;",
    "g2 = &y;",
    "g3 = &x;",
    "g1 = g2;",
    "g2 = g3;",
    "g3 = g1;",
    "h1 = &g1;",
    "h2 = &g2;",
    "h1 = h2;",
    "*h1 = &y;",
    "*h2 = g1;",
    "g1 = *h1;",
]

_stmt_lists = st.lists(st.sampled_from(_STMT_POOL), min_size=0, max_size=5)


def _call_version(prefix, body, suffix):
    return (
        _DECLS
        + "void helper(void) {\n"
        + "".join(f"    {s}\n" for s in body)
        + "}\n"
        + "int main() {\n"
        + "".join(f"    {s}\n" for s in prefix)
        + "    helper();\n"
        + "".join(f"    {s}\n" for s in suffix)
        + "    return 0;\n}\n"
    )


def _inline_version(prefix, body, suffix):
    return (
        _DECLS
        + "int main() {\n"
        + "".join(f"    {s}\n" for s in prefix + body + suffix)
        + "    return 0;\n}\n"
    )


def _exit_pairs(source, k):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    solution = solve_summary(analyzed, icfg, k=k)
    return solution.store.pairs_at(icfg.exit_of("main").nid)


class TestInstantiationEqualsInlining:
    @given(prefix=_stmt_lists, body=_stmt_lists, suffix=_stmt_lists)
    @settings(max_examples=25, **_SETTINGS)
    def test_summary_call_equals_inlined_body(self, prefix, body, suffix):
        called = _exit_pairs(_call_version(prefix, body, suffix), k=2)
        inlined = _exit_pairs(_inline_version(prefix, body, suffix), k=2)
        assert called == inlined

    @given(body=_stmt_lists)
    @settings(max_examples=10, **_SETTINGS)
    def test_summary_call_equals_inlined_body_k1(self, body):
        prefix = ["g1 = &x;", "h1 = &g2;"]
        suffix = ["g3 = g1;"]
        called = _exit_pairs(_call_version(prefix, body, suffix), k=1)
        inlined = _exit_pairs(_inline_version(prefix, body, suffix), k=1)
        assert called == inlined


# --- SCC condensation ---------------------------------------------------

_NODES = tuple(f"f{i}" for i in range(7))

# Arbitrary digraphs over a fixed node universe.  Self-edges model
# direct recursion; cycles through several nodes model mutual
# recursion — both must land in the right component.
_digraphs = st.builds(
    lambda edge_set: sorted(edge_set),
    st.sets(
        st.tuples(st.sampled_from(_NODES), st.sampled_from(_NODES)),
        max_size=18,
    ),
)


def _reachable(nodes, succs):
    """node -> set of nodes reachable via one or more edges."""
    out = {}
    for start in nodes:
        seen = set()
        stack = list(succs.get(start, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(succs.get(node, ()))
        out[start] = seen
    return out


class TestSccCondensation:
    @given(edges=_digraphs)
    @settings(max_examples=80, **_SETTINGS)
    def test_tarjan_partitions_into_mutual_reachability_classes(self, edges):
        succs = {}
        for src, dst in edges:
            succs.setdefault(src, []).append(dst)
        sccs = tarjan_sccs(_NODES, succs)
        # A partition: every node in exactly one component.
        flat = [node for scc in sccs for node in scc]
        assert sorted(flat) == sorted(_NODES)
        # Components are the mutual-reachability classes (a singleton
        # is cyclic only if it has a self-edge).
        reach = _reachable(_NODES, succs)
        scc_of = {node: i for i, scc in enumerate(sccs) for node in scc}
        for a in _NODES:
            for b in _NODES:
                together = a == b or (b in reach[a] and a in reach[b])
                assert (scc_of[a] == scc_of[b]) == together

    @given(edges=_digraphs)
    @settings(max_examples=80, **_SETTINGS)
    def test_tarjan_output_is_reverse_topological(self, edges):
        succs = {}
        for src, dst in edges:
            succs.setdefault(src, []).append(dst)
        sccs = tarjan_sccs(_NODES, succs)
        scc_of = {node: i for i, scc in enumerate(sccs) for node in scc}
        for src, dst in edges:
            if scc_of[src] != scc_of[dst]:
                # Callee components first: bottom-up order.
                assert scc_of[dst] < scc_of[src]

    @given(seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, **_SETTINGS)
    def test_call_graph_waves_respect_edges(self, seed):
        spec = ProgramSpec(
            name=f"scc-gen{seed}",
            seed=seed,
            n_functions=5,
            n_globals=4,
            stmts_per_function=6,
            call_prob=0.5,
            recursion=True,
            max_pointer_depth=1,
            pointer_density=0.6,
        )
        analyzed = parse_and_analyze(generate_program(spec))
        icfg = build_icfg(analyzed)
        graph = build_call_graph(icfg)
        # Every procedure sits in exactly one wave at its depth.
        assert sorted(p for wave in graph.waves for p in wave) == sorted(
            graph.procs
        )
        for proc in graph.procs:
            assert proc in graph.waves[graph.depth[proc]]
        # Cross-component edges strictly increase depth caller-ward;
        # intra-component edges (recursion) tie.
        for proc, callees in graph.edges.items():
            for callee in callees:
                if graph.scc_of[proc] == graph.scc_of[callee]:
                    assert graph.depth[proc] == graph.depth[callee]
                else:
                    assert graph.depth[proc] >= graph.depth[callee] + 1
        # order_key is bottom-up: every callee sorts before its
        # cross-component callers.
        for proc, callees in graph.edges.items():
            for callee in callees:
                if graph.scc_of[proc] != graph.scc_of[callee]:
                    assert graph.order_key(callee) < graph.order_key(proc)


# --- summary = kernel on generated programs -----------------------------


class TestSummaryMatchesKernel:
    @given(
        seed=st.integers(min_value=0, max_value=200),
        k=st.sampled_from([1, 2]),
    )
    @settings(max_examples=8, **_SETTINGS)
    def test_generated_program_summary_equals_kernel(self, seed, k):
        spec = ProgramSpec(
            name=f"sumprop-gen{seed}",
            seed=seed,
            n_functions=3,
            n_globals=5,
            stmts_per_function=6,
            max_pointer_depth=1,
            pointer_density=0.85,
        )
        analyzed = parse_and_analyze(generate_program(spec))
        icfg = build_icfg(analyzed)
        kernel = KernelAnalysis(analyzed, icfg, k=k).run()
        summary = solve_summary(analyzed, icfg, k=k)
        assert dict(kernel.facts()) == dict(summary.store.facts())
        for node in icfg.nodes:
            assert kernel.pairs_at(node.nid) == summary.store.pairs_at(
                node.nid
            )
