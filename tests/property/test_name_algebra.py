"""Property-based tests for the object-name algebra (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.names import DEREF, AliasPair, ObjectName, apply_trans, k_limit

bases = st.sampled_from(["p", "q", "r", "head", "g1", "main::l1"])
selectors = st.lists(
    st.sampled_from([DEREF, "next", "f", "val"]), min_size=0, max_size=8
).map(tuple)
names = st.builds(lambda b, s: ObjectName(b, s), bases, selectors)
ks = st.integers(min_value=1, max_value=4)


@given(names, ks)
def test_k_limit_idempotent(name, k):
    once = k_limit(name, k)
    assert k_limit(once, k) == once


@given(names, ks)
def test_k_limit_bounds_derefs(name, k):
    assert k_limit(name, k).num_derefs <= k


@given(names, ks)
def test_k_limit_is_prefix_of_original(name, k):
    limited = k_limit(name, k)
    assert ObjectName(limited.base, limited.selectors).is_prefix(name)


@given(names, ks)
def test_k_limit_truncates_exactly_when_over(name, k):
    limited = k_limit(name, k)
    assert limited.truncated == (name.num_derefs > k)


@given(names, selectors)
def test_extend_then_suffix_roundtrip(name, ext):
    if name.truncated:
        return
    extended = name.extend(ext)
    assert extended.suffix_after(name) == ext


@given(names, selectors, names)
def test_apply_trans_transplants_suffix(base, ext, target):
    if base.truncated or target.truncated:
        return
    extended = base.extend(ext)
    result = apply_trans(base, extended, target)
    assert result.base == target.base
    assert result.selectors == target.selectors + ext


@given(names, names)
def test_alias_pair_symmetric(a, b):
    assert AliasPair(a, b) == AliasPair(b, a)
    assert hash(AliasPair(a, b)) == hash(AliasPair(b, a))


@given(names, names)
def test_alias_pair_other_inverts(a, b):
    pair = AliasPair(a, b)
    assert pair.other(pair.first) == pair.second
    assert pair.other(pair.second) == pair.first


@given(names, names, ks)
def test_alias_pair_k_limited_members_bounded(a, b, k):
    pair = AliasPair(a, b).k_limited(k)
    assert pair.first.num_derefs <= k
    assert pair.second.num_derefs <= k


@given(names, names)
def test_prefix_antisymmetry(a, b):
    if a.is_prefix(b) and b.is_prefix(a):
        assert a == b or a.truncated != b.truncated


@given(names, names, names)
def test_prefix_transitive(a, b, c):
    if a.is_prefix(b) and b.is_prefix(c):
        assert a.is_prefix(c)
