"""Unit tests for solution serialization."""

import io

import pytest

from repro import analyze_source
from repro.io import (
    LoadedSolution,
    dump_solution,
    dumps_solution,
    load_solution,
    loads_solution,
    solution_to_dict,
)
from repro.names import ObjectName
from repro.programs.fixtures import FIGURE1


@pytest.fixture(scope="module")
def solution():
    return analyze_source(FIGURE1, k=3)


class TestRoundTrip:
    def test_dict_shape(self, solution):
        doc = solution_to_dict(solution)
        assert doc["format"] == "repro-alias-solution"
        assert doc["version"] == 1
        assert doc["k"] == 3
        assert len(doc["nodes"]) == len(solution.icfg)
        assert doc["facts"]

    def test_string_round_trip(self, solution):
        loaded = loads_solution(dumps_solution(solution))
        for node in solution.icfg.nodes:
            assert loaded.may_alias(node.nid) == solution.may_alias(node)

    def test_file_round_trip(self, solution, tmp_path):
        path = tmp_path / "solution.json"
        with open(path, "w") as fp:
            dump_solution(solution, fp)
        with open(path) as fp:
            loaded = load_solution(fp)
        assert loaded.k == 3

    def test_alias_query_preserved(self, solution):
        loaded = loads_solution(dumps_solution(solution))
        exit_main = solution.icfg.exit_of("main")
        l1 = ObjectName("main::l1").deref().deref()
        l2 = ObjectName("main::l2").deref()
        assert loaded.alias_query(exit_main.nid, l1, l2) == solution.alias_query(
            exit_main, l1, l2
        )

    def test_percent_yes_close(self, solution):
        loaded = loads_solution(dumps_solution(solution))
        # Loaded %YES collapses assumptions to (node, pair) — identical
        # to the solution's own definition.
        assert loaded.percent_yes() == pytest.approx(solution.percent_yes(), abs=1e-9)

    def test_truncated_names_survive(self):
        src = """
        struct node { int v; struct node *next; };
        struct node *p, *q;
        int main() { p = q; return 0; }
        """
        original = analyze_source(src, k=1)
        loaded = loads_solution(dumps_solution(original))
        exit_main = original.icfg.exit_of("main")
        deep_p = ObjectName("p").extend(("*", "next", "*"))
        deep_q = ObjectName("q").extend(("*", "next", "*"))
        assert loaded.alias_query(exit_main.nid, deep_p, deep_q)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            LoadedSolution({"format": "other", "version": 1})

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError):
            LoadedSolution({"format": "repro-alias-solution", "version": 99})
