"""Sanity checks on the fixture programs themselves."""

import pytest

from repro.frontend import parse_and_analyze
from repro.interp import Interpreter
from repro.programs.fixtures import (
    ALL_FIXTURES,
    EXPR_TREE,
    FIGURE1,
    LINKED_LIST,
    MATRIX_SWAP,
    STRESS_FIXTURES,
    STRING_TABLE,
)


class TestFixturesRun:
    """Every fixture must execute cleanly in the interpreter (they are
    the inputs to the dynamic-soundness property)."""

    @pytest.mark.parametrize("name", sorted(ALL_FIXTURES))
    def test_runs_without_trap(self, name):
        analyzed = parse_and_analyze(ALL_FIXTURES[name])
        result = Interpreter(analyzed, fuel=200_000).run()
        assert not result.trapped, result.trap_message
        assert result.exit_value == 0

    @pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
    def test_stress_runs_without_trap(self, name):
        analyzed = parse_and_analyze(STRESS_FIXTURES[name])
        result = Interpreter(analyzed, fuel=200_000).run()
        assert not result.trapped, result.trap_message


class TestFixtureSemantics:
    def test_linked_list_finds_and_updates(self):
        # find(list, 3) hits and sets value to 33: verify via globals?
        # The fixture returns 0; semantic detail is covered by running.
        analyzed = parse_and_analyze(LINKED_LIST)
        result = Interpreter(analyzed, fuel=200_000).run()
        assert result.exit_value == 0

    def test_expr_tree_evaluates(self):
        analyzed = parse_and_analyze(EXPR_TREE)
        interp = Interpreter(analyzed, fuel=200_000)
        result = interp.run()
        assert not result.trapped
        # result = (0 * 5) + 7 = 7 stored in global `result`.
        assert interp.memory.globals["result"].value == 7

    def test_string_table_interns(self):
        analyzed = parse_and_analyze(STRING_TABLE)
        result = Interpreter(analyzed, fuel=200_000).run()
        assert not result.trapped

    def test_matrix_swap_swaps(self):
        analyzed = parse_and_analyze(MATRIX_SWAP)
        interp = Interpreter(analyzed, fuel=200_000)
        result = interp.run()
        assert not result.trapped
        rows = interp.memory.globals["rows"]
        # rows is an aggregate cell; after the swap it holds one of the
        # row objects (aggregate semantics merge the elements).
        assert rows.value is not None

    def test_figure1_matches_paper_line_count(self):
        # Keep the running example recognizable: two procedures, the
        # exact statements of the figure.
        assert FIGURE1.count("p();") == 2
        assert "l1 = &g1;" in FIGURE1
