"""Unit tests for the workload generators."""

import pytest

from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.programs import (
    ProgramSpec,
    TABLE1_PAPER,
    TABLE2_PAPER,
    all_or_none,
    generate_program,
    suite_member,
    table1_suite,
    table2_suite,
)
from repro.programs.fixtures import ALL_FIXTURES, STRESS_FIXTURES


class TestAllOrNone:
    def test_matches_figure_shape(self):
        src = all_or_none(3)
        assert "int *v1, *v2, *v3;" in src
        assert src.count("v1 = b") == 1
        assert "b = d" in src

    def test_seed_variant_adds_prelude(self):
        assert "if (unknown) { b = d; }" in all_or_none(2, seed_alias=True)
        assert "if (unknown) { b = d; }" not in all_or_none(2)

    def test_parses_and_lowers(self):
        for n in (1, 5):
            for seeded in (False, True):
                icfg = build_icfg(parse_and_analyze(all_or_none(n, seeded)))
                icfg.validate()

    def test_n_zero_rejected(self):
        with pytest.raises(ValueError):
            all_or_none(0)

    def test_node_count_linear_in_n(self):
        sizes = []
        for n in (4, 8):
            icfg = build_icfg(parse_and_analyze(all_or_none(n)))
            sizes.append(len(icfg))
        # Doubling n roughly doubles the node count.
        assert 1.5 < sizes[1] / sizes[0] < 2.5


class TestSyntheticGenerator:
    def test_deterministic(self):
        spec = ProgramSpec("x", seed=42)
        assert generate_program(spec) == generate_program(spec)

    def test_different_seeds_differ(self):
        a = generate_program(ProgramSpec("x", seed=1))
        b = generate_program(ProgramSpec("x", seed=2))
        assert a != b

    def test_always_valid_minic(self):
        for seed in range(1, 15):
            spec = ProgramSpec(f"v{seed}", seed=seed, n_functions=3, stmts_per_function=6)
            icfg = build_icfg(parse_and_analyze(generate_program(spec)))
            icfg.validate()

    def test_target_sizing_roughly_holds(self):
        spec = ProgramSpec.for_target_nodes("sized", 400)
        icfg = build_icfg(parse_and_analyze(generate_program(spec)))
        assert 150 <= len(icfg) <= 900

    def test_stable_seed_from_name(self):
        assert ProgramSpec.for_target_nodes("lex", 100).seed == ProgramSpec.for_target_nodes("lex", 100).seed
        assert (
            ProgramSpec.for_target_nodes("lex", 100).seed
            != ProgramSpec.for_target_nodes("tbl", 100).seed
        )


class TestPointerKnobs:
    """The depth/density knobs added for the differential-testing and
    property suites (they steer draws away from the k-limit
    saturation pathology)."""

    def test_defaults_leave_output_unchanged(self):
        # Explicit defaults must be byte-identical to omitting the
        # knobs — existing seed-addressed corpora stay stable.
        base = ProgramSpec("x", seed=42)
        knobbed = ProgramSpec(
            "x", seed=42, max_pointer_depth=None, pointer_density=1.0
        )
        assert generate_program(base) == generate_program(knobbed)

    def test_depth_one_removes_double_pointers(self):
        for seed in (1, 5, 9, 42):
            spec = ProgramSpec(
                f"d{seed}", seed=seed, n_functions=3, stmts_per_function=7,
                max_pointer_depth=1,
            )
            source = generate_program(spec)
            assert "**" not in source, source
            parse_and_analyze(source)

    def test_density_zero_still_declares_but_rarely_assigns_pointers(self):
        dense = generate_program(
            ProgramSpec("x", seed=7, pointer_density=1.0)
        )
        sparse = generate_program(
            ProgramSpec("x", seed=7, pointer_density=0.0)
        )
        assert dense != sparse
        # Density only demotes *drawn statement kinds*; counting the
        # address-of sites shows the pointer traffic actually dropped.
        assert sparse.count("&") < dense.count("&")

    def test_knobbed_programs_remain_valid(self):
        for seed in range(1, 12):
            spec = ProgramSpec(
                f"k{seed}", seed=seed, n_functions=3, stmts_per_function=6,
                max_pointer_depth=1, pointer_density=0.85,
            )
            icfg = build_icfg(parse_and_analyze(generate_program(spec)))
            icfg.validate()

    def test_knobs_are_deterministic(self):
        spec = ProgramSpec(
            "x", seed=3, max_pointer_depth=1, pointer_density=0.5
        )
        assert generate_program(spec) == generate_program(spec)


class TestSuite:
    def test_table2_names_complete(self):
        assert len(TABLE2_PAPER) == 18  # the paper's Table 2 rows

    def test_table1_names_complete(self):
        assert len(TABLE1_PAPER) == 9  # the paper's Table 1 rows

    def test_member_generation(self):
        member = suite_member("allroots", scale=0.2)
        assert member.paper_nodes == 407
        parse_and_analyze(member.source)

    def test_unknown_member_rejected(self):
        with pytest.raises(KeyError):
            suite_member("nonexistent")

    def test_scaling_changes_size(self):
        small = suite_member("tbl", scale=0.05)
        large = suite_member("tbl", scale=0.2)
        assert len(large.source) > len(small.source)

    def test_suites_iterate(self):
        names = [m.name for m in table2_suite(scale=0.05, names=["allroots", "ul"])]
        assert names == ["allroots", "ul"]
        names1 = [m.name for m in table1_suite(scale=0.05, names=["ul"])]
        assert names1 == ["ul"]


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(ALL_FIXTURES))
    def test_fixture_analyzable(self, name):
        icfg = build_icfg(parse_and_analyze(ALL_FIXTURES[name]))
        icfg.validate()

    @pytest.mark.parametrize("name", sorted(STRESS_FIXTURES))
    def test_stress_fixture_parses(self, name):
        icfg = build_icfg(parse_and_analyze(STRESS_FIXTURES[name]))
        icfg.validate()
