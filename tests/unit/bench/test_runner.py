"""Unit tests for the measurement helpers (ratio clamping, dedup A/B)."""

import math

from repro.bench.runner import DedupComparison, Measurement, clamp_percent, compare_dedup, measure


def _measurement(lr=0, weihl=None):
    return Measurement(
        name="t",
        source_lines=1,
        icfg_nodes=1,
        lr_program_aliases=lr,
        lr_program_aliases_all=lr,
        lr_node_aliases=lr,
        lr_seconds=0.0,
        percent_yes=100.0,
        weihl_aliases=weihl,
    )


class TestWeihlRatio:
    def test_none_when_weihl_skipped(self):
        assert _measurement(lr=5, weihl=None).weihl_ratio is None

    def test_zero_alias_program_is_ratio_one(self):
        # 0/0 would be nan; both analyses found nothing — parity.
        assert _measurement(lr=0, weihl=0).weihl_ratio == 1.0

    def test_zero_lr_nonzero_weihl_avoids_inf(self):
        ratio = _measurement(lr=0, weihl=7).weihl_ratio
        assert math.isfinite(ratio)
        assert ratio == 7.0

    def test_ordinary_ratio(self):
        assert _measurement(lr=4, weihl=8).weihl_ratio == 2.0


class TestClampPercent:
    def test_nan_maps_to_vacuous_precision(self):
        assert clamp_percent(float("nan")) == 100.0

    def test_inf_maps_to_vacuous_precision(self):
        assert clamp_percent(float("inf")) == 100.0
        assert clamp_percent(float("-inf")) == 100.0

    def test_clamps_range(self):
        assert clamp_percent(-3.0) == 0.0
        assert clamp_percent(250.0) == 100.0
        assert clamp_percent(42.5) == 42.5


class TestZeroAliasProgram:
    SOURCE = "int main() { return 0; }"

    def test_measure_reports_finite_numbers(self):
        result = measure("empty", self.SOURCE, k=3, run_weihl=True)
        assert result.lr_program_aliases == 0
        assert result.percent_yes == 100.0  # vacuously precise
        assert result.weihl_ratio == 1.0

    def test_compare_dedup_on_empty_program(self):
        comparison = compare_dedup("empty", self.SOURCE, k=3)
        assert comparison.identical_may_alias
        assert comparison.pops_dedup <= comparison.pops_seed
        assert comparison.pop_reduction == 0.0 or comparison.pops_seed > 0


class TestDedupComparison:
    def test_pop_reduction(self):
        comparison = DedupComparison(
            name="t",
            icfg_nodes=1,
            may_hold_facts=1,
            pops_dedup=90,
            pops_seed=100,
            pushes_dedup=90,
            pushes_seed=100,
            dedup_hits=10,
            stale_skips=0,
            seconds_dedup=0.0,
            seconds_seed=0.0,
            identical_may_alias=True,
        )
        assert math.isclose(comparison.pop_reduction, 0.1)
        assert math.isclose(comparison.as_dict()["pop_reduction"], 0.1)

    def test_pop_reduction_guards_zero_division(self):
        comparison = DedupComparison(
            name="t",
            icfg_nodes=0,
            may_hold_facts=0,
            pops_dedup=0,
            pops_seed=0,
            pushes_dedup=0,
            pushes_seed=0,
            dedup_hits=0,
            stale_skips=0,
            seconds_dedup=0.0,
            seconds_seed=0.0,
            identical_may_alias=True,
        )
        assert comparison.pop_reduction == 0.0

    def test_dedup_identical_on_figure1(self):
        from repro.programs.fixtures import FIGURE1

        comparison = compare_dedup("figure1", FIGURE1, k=3)
        assert comparison.identical_may_alias
        assert comparison.pops_dedup <= comparison.pops_seed
