"""Unit tests for the bench reporting/measurement helpers."""

import os

from repro.bench import Measurement, bench_scale, format_table, measure
from repro.programs.fixtures import FIGURE1


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            "My Table", ("a", "bb"), [(1, 22), (333, 4)], note="n"
        )
        lines = table.splitlines()
        assert lines[0] == "My Table"
        assert lines[2].endswith("bb")
        assert "---" in lines[3]
        assert lines[-1] == "n"

    def test_floats_formatted(self):
        table = format_table("t", ("x",), [(1.23456,)])
        assert "1.23" in table

    def test_empty_rows(self):
        table = format_table("t", ("x", "y"), [])
        assert "x" in table and "y" in table


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale(0.25) == 0.25

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale(0.1) == 0.1


class TestMeasure:
    def test_figure1_measurement(self):
        m = measure("figure1", FIGURE1, k=3, run_weihl=True, run_andersen=True)
        assert m.icfg_nodes == 13
        assert m.lr_program_aliases > 0
        assert m.weihl_aliases is not None and m.weihl_aliases >= m.lr_program_aliases
        assert m.andersen_aliases is not None
        assert m.weihl_ratio >= 1.0
        assert 0 <= m.percent_yes <= 100

    def test_weihl_optional(self):
        m = measure("figure1", FIGURE1, k=2, run_weihl=False)
        assert m.weihl_aliases is None
        assert m.weihl_ratio is None
