"""Unit tests for conservative stub synthesis."""

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.frontend import analyze
from repro.frontend import ast_nodes as ast
from repro.frontend.pycparser_bridge import parse_c_lenient
from repro.corpus.stubs import called_names, synthesize_stubs
from repro.icfg import build_icfg


def lower(source):
    return parse_c_lenient(source).program


class TestCalledNames:
    def test_collects_calls_everywhere(self):
        program = lower(
            """
            extern int helper(int x);
            int twice(int x) { return helper(helper(x)); }
            int main() { for (int i = 0; i < twice(2); i++) { } return 0; }
            """
        )
        names = called_names(program)
        assert {"helper", "twice"} <= names


class TestSynthesis:
    def test_declared_undefined_pointer_function_gets_stub(self):
        program = lower(
            """
            struct node { int v; struct node *next; };
            extern struct node *dup_node(struct node *n);
            int main() {
                struct node local;
                struct node *copy;
                copy = dup_node(&local);
                return copy != 0;
            }
            """
        )
        synthesis = synthesize_stubs(program)
        assert synthesis.stubbed == ["dup_node"]
        stub = program.function("dup_node")
        assert isinstance(stub, ast.FuncDef)
        # The closed program analyzes and lowers end to end.
        analyzed = analyze(program)
        build_icfg(analyzed).validate()

    def test_stub_effects_have_proceffects_shape(self):
        program = lower(
            """
            struct node { int v; struct node *next; };
            extern struct node *dup_node(struct node *n);
            int main() { struct node l; return dup_node(&l) != 0; }
            """
        )
        synthesis = synthesize_stubs(program)
        effects = synthesis.effects["dup_node"].as_dict()
        assert set(effects) == {"name", "mod", "ref", "returns"}
        assert any("next" in m for m in effects["mod"])
        assert "<fresh>" in effects["returns"]
        # The prototype's own parameter can be returned.
        assert any(r != "<fresh>" for r in effects["returns"])

    def test_well_known_prototypes_dropped(self):
        program = lower(
            """
            extern void *malloc(unsigned long n);
            extern void free(void *p);
            extern int strlen(char *s);
            int main() {
                char *s;
                s = malloc(4);
                free(s);
                return 0;
            }
            """
        )
        synthesis = synthesize_stubs(program)
        assert set(synthesis.well_known) == {"malloc", "free", "strlen"}
        assert not any(
            isinstance(d, ast.FuncDecl) and d.name in {"malloc", "free"}
            for d in program.decls
        )
        analyzed = analyze(program)
        build_icfg(analyzed).validate()

    def test_undeclared_callee_reported_not_stubbed(self):
        program = lower(
            """
            int main() { return mystery(1); }
            """
        )
        synthesis = synthesize_stubs(program)
        assert synthesis.skipped_undeclared == ["mystery"]
        assert synthesis.stubbed == []

    def test_defined_functions_not_stubbed(self):
        program = lower(
            """
            int helper(int x) { return x; }
            int main() { return helper(1); }
            """
        )
        synthesis = synthesize_stubs(program)
        assert synthesis.stubbed == []

    def test_scalar_stub_returns_rand(self):
        program = lower(
            """
            extern int checksum(char *data, int n);
            int main() { char buf[4]; return checksum(buf, 4); }
            """
        )
        synthesize_stubs(program)
        stub = program.function("checksum")
        returns = [
            s for s in stub.body.items if isinstance(s, ast.Return)
        ]
        assert returns and isinstance(returns[-1].value, ast.Call)
        assert returns[-1].value.callee == "rand"
