"""Soundness pins for the corpus construction.

``stub_superset_check``: per-TU analysis with auto-stubbed externals
must over-approximate the whole-program facts on fixtures where both
are computable.  ``lowered_dynamic_check``: leniently lowered programs
must stay sound against the dynamic oracle where interpretable.
"""

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.corpus import stub_superset_check
from repro.corpus.soundness import _owner, lowered_dynamic_check

FIXTURE = """
struct box { int *slot; };

int *pick(int *a, int *b) {
    if (a != 0) { return a; }
    return b;
}

void fill(struct box *bx, int *p) {
    bx->slot = p;
}

int main() {
    int u;
    int w;
    struct box b;
    int *r;
    fill(&b, &u);
    r = pick(&u, &w);
    return r != 0;
}
"""


class TestOwner:
    def test_global(self):
        assert _owner("g") is None

    def test_local(self):
        assert _owner("main::p") == "main"

    def test_shadowed_local(self):
        assert _owner("main::p#2") == "main"

    def test_return_slot(self):
        assert _owner("f$ret") == "f"


class TestStubSuperset:
    def test_stubbing_pick_keeps_all_facts(self):
        result = stub_superset_check(FIXTURE, ["pick"], k=2)
        assert result["ok"], result["missing"]
        assert result["stubbed"] == ["pick"]
        assert result["checked_pairs"] > 0

    def test_stubbing_fill_keeps_all_facts(self):
        result = stub_superset_check(FIXTURE, ["fill"], k=2)
        assert result["ok"], result["missing"]
        assert result["checked_pairs"] > 0

    def test_stubbing_both_keeps_all_facts(self):
        result = stub_superset_check(FIXTURE, ["pick", "fill"], k=2)
        assert result["ok"], result["missing"]
        assert sorted(result["stubbed"]) == ["fill", "pick"]


LOWERED = """
extern void *malloc(unsigned long n);
struct node { int v; struct node *next; };
int main() {
    struct node a;
    struct node b;
    struct node *p;
    a.next = &b;
    p = (struct node *)a.next;
    return p != 0;
}
"""


class TestLoweredDynamic:
    def test_lowered_program_sound_against_oracle(self):
        result = lowered_dynamic_check(LOWERED, k=2, draws=4)
        assert result["ok"], result["violations"]
        assert result["interpretable"]
        assert result["observed_pairs"] > 0
        assert result["ledger"]["event_counts"].get("cast-erased") == 1
