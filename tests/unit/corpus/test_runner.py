"""Unit tests for the corpus runner: discovery, per-file outcomes,
error resilience, cache integration and the aggregate report."""

import json

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.corpus import CORPUS_SCHEMA, corpus_file_unit, discover_corpus, run_corpus

GOOD = """
extern void *malloc(unsigned long n);
struct cell { int v; struct cell *next; };
struct cell *push(struct cell *head) {
    struct cell *c = (struct cell *)malloc(sizeof(struct cell));
    if (c != 0) { c->next = head; return c; }
    return head;
}
int main() { struct cell *l = 0; l = push(push(l)); return l != 0; }
"""

STUBBED = """
struct cell { int v; struct cell *next; };
extern struct cell *clone(struct cell *c);
int main() { struct cell local; return clone(&local) != 0; }
"""

BROKEN = "int main( { this is not C\n"


@pytest.fixture()
def corpus_dir(tmp_path):
    (tmp_path / "good.c").write_text(GOOD)
    (tmp_path / "stubbed.c").write_text(STUBBED)
    (tmp_path / "broken.c").write_text(BROKEN)
    (tmp_path / "notes.txt").write_text("not C\n")
    return tmp_path


class TestDiscovery:
    def test_only_c_files_sorted(self, corpus_dir):
        names = [p.name for p in discover_corpus(corpus_dir)]
        assert names == ["broken.c", "good.c", "stubbed.c"]

    def test_single_file(self, corpus_dir):
        found = discover_corpus(corpus_dir / "good.c")
        assert [p.name for p in found] == ["good.c"]


class TestFileUnit:
    def test_ok_file(self, corpus_dir):
        result = corpus_file_unit(
            {"path": "good.c", "source": GOOD, "k": 1, "max_facts": 100_000}
        )
        assert result["status"] == "ok"
        assert result["solution"]["complete"]
        assert result["precision"]["lr_untruncated"] > 0
        assert (
            result["precision"]["weihl_untruncated"]
            >= result["precision"]["lr_untruncated"]
        )
        assert result["ledger"]["coverage_percent"] == 100.0
        assert json.loads(result["sarif"])["version"] == "2.1.0"

    def test_parse_error_is_explicit(self):
        result = corpus_file_unit(
            {"path": "broken.c", "source": BROKEN, "k": 1}
        )
        assert result["status"] == "parse_error"
        assert "broken.c" in result["error"] or result["error"]

    def test_stubbed_file_reports_synthesis(self):
        result = corpus_file_unit(
            {"path": "stubbed.c", "source": STUBBED, "k": 1, "max_facts": 100_000}
        )
        assert result["status"] == "ok"
        assert result["stubs"]["stubbed"] == ["clone"]


class TestRunCorpus:
    def test_sweep_survives_bad_file(self, corpus_dir):
        report = run_corpus([corpus_dir], k=1, jobs=1)
        assert report["schema"] == CORPUS_SCHEMA
        agg = report["aggregate"]
        assert agg["files_total"] == 3
        assert agg["files_ok"] == 2
        assert agg["parse_errors"] == 1
        assert agg["shard_failures"] == 0
        assert agg["stubs_synthesized"] == 1
        statuses = {f["path"].split("/")[-1]: f["status"] for f in report["files"]}
        assert statuses["broken.c"] == "parse_error"
        assert statuses["good.c"] == "ok"

    def test_cold_then_warm_cache(self, corpus_dir, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_corpus([corpus_dir], k=1, jobs=1, cache_dir=cache_dir)
        warm = run_corpus([corpus_dir], k=1, jobs=1, cache_dir=cache_dir)
        assert cold["aggregate"]["cache"]["misses"] == 2
        assert warm["aggregate"]["cache"]["hits"] == 2
        cold_ok = [f for f in cold["files"] if f["status"] == "ok"]
        warm_ok = [f for f in warm["files"] if f["status"] == "ok"]
        for before, after in zip(cold_ok, warm_ok):
            assert before["precision"] == after["precision"]

    def test_budget_reported_as_partial(self, corpus_dir):
        report = run_corpus([corpus_dir / "good.c"], k=1, jobs=1, max_facts=10)
        entry = report["files"][0]
        assert entry["status"] == "ok"
        assert not entry["solution"]["complete"]
        assert report["aggregate"]["files_partial"] == 1
