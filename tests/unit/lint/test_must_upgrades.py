"""Must-alias lint upgrades: with a must side on the provider,
findings flip from "possible" (some path) to "definite" (every path),
null-deref escalates to an error, and the confidence model is threaded
through report math, rendering and SARIF."""

import pytest

from repro.lint import CONFIDENCES, render_text, run_lint, to_sarif, validate_sarif
from repro.lint.findings import RULE_CONFLICT, RULE_DEAD_STORE, RULE_NULL_DEREF

pytestmark = pytest.mark.lint

# h must-points to p, so the store through *h writes NULL into p on
# every path: with the must engine the final *p deref is definitely
# null, without it the detector can only say "possible".
UPGRADE = (
    "int x; int *p; int **h;"
    " void main(void) { h = &p; p = &x; *h = 0; x = *p; }"
)


class TestUpgrade:
    def test_without_must_null_deref_stays_possible(self):
        report = run_lint(UPGRADE)
        assert not report.must_enabled
        (finding,) = report.by_rule(RULE_NULL_DEREF)
        assert finding.confidence == "possible"
        assert finding.severity == "warning"

    def test_with_must_null_deref_is_definite_error(self):
        report = run_lint(UPGRADE, must=True)
        assert report.must_enabled
        (finding,) = report.by_rule(RULE_NULL_DEREF)
        assert finding.confidence == "definite"
        assert finding.severity == "error"

    def test_with_must_conflicts_and_dead_store_upgrade(self):
        report = run_lint(UPGRADE, must=True)
        for finding in report.by_rule(RULE_CONFLICT):
            assert finding.confidence == "definite"
        (dead,) = report.by_rule(RULE_DEAD_STORE)
        assert dead.confidence == "definite"
        assert report.definite_count() == len(report.findings)

    def test_confidence_counts_partition_the_report(self):
        report = run_lint(UPGRADE, must=True)
        counts = report.confidence_counts()
        assert set(counts) <= set(CONFIDENCES)
        assert sum(counts.values()) == len(report.findings)


class TestThreading:
    def test_every_finding_has_a_valid_confidence(self):
        report = run_lint(UPGRADE, must=True, compare_with="weihl")
        assert report.findings
        for finding in report.findings:
            assert finding.confidence in CONFIDENCES

    def test_render_text_reports_definite_total(self):
        text = render_text(run_lint(UPGRADE, must=True))
        assert "definite (every-path) finding" in text

    def test_sarif_carries_confidence_and_run_flags(self):
        report = run_lint(UPGRADE, must=True)
        doc = to_sarif(report)
        assert validate_sarif(doc) == []
        run = doc["runs"][0]
        assert run["properties"]["mustEnabled"] is True
        assert run["properties"]["definiteFindings"] == report.definite_count()
        for result in run["results"]:
            assert result["properties"]["confidence"] in CONFIDENCES

    def test_sarif_without_must_records_disabled(self):
        doc = to_sarif(run_lint(UPGRADE))
        assert doc["runs"][0]["properties"]["mustEnabled"] is False
