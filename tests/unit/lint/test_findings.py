"""Finding structure: dedup, severity ranking, keys, report math."""

import pytest

from repro.frontend.diagnostics import DUMMY_SPAN
from repro.lint import LintReport, dedup_findings
from repro.lint.findings import (
    RULE_CATALOG,
    RULE_DANGLING,
    RULE_DEAD_STORE,
    RULE_NULL_DEREF,
    RULE_UNINIT,
    SEVERITIES,
    Finding,
)
from repro.names import ObjectName

pytestmark = pytest.mark.lint


def make(rule=RULE_NULL_DEREF, severity="warning", proc="main", node_id=1,
         name=None, **kw):
    return Finding(
        rule=rule,
        severity=severity,
        message=f"{rule} on {name}",
        proc=proc,
        node_id=node_id,
        name=name,
        **kw,
    )


class TestFinding:
    def test_dummy_span_has_no_location(self):
        finding = make()
        assert not finding.has_location
        assert finding.location() == "<main>"

    def test_match_key_uses_base_uid(self):
        name = ObjectName("main::p").deref()
        assert make(name=name).match_key() == (RULE_NULL_DEREF, "main::p")

    def test_str_mentions_rule_and_witnesses(self):
        text = str(make(witnesses=("(p, q)",), also_weihl=False))
        assert "[null-deref]" in text
        assert "(p, q)" in text
        assert "NOT flagged" in text

    def test_catalog_covers_all_severities(self):
        for info in RULE_CATALOG.values():
            assert info.default_level in SEVERITIES


class TestDedup:
    def test_same_defect_keeps_most_severe(self):
        name = ObjectName("main::p")
        dupes = [
            make(name=name, severity="warning", node_id=3),
            make(name=name, severity="error", node_id=4),
        ]
        kept = dedup_findings(dupes)
        assert len(kept) == 1
        assert kept[0].severity == "error"

    def test_different_rules_both_kept(self):
        name = ObjectName("main::p")
        kept = dedup_findings(
            [make(rule=RULE_NULL_DEREF, name=name), make(rule=RULE_UNINIT, name=name)]
        )
        assert len(kept) == 2


class TestReport:
    def test_rule_counts_include_zero_rules(self):
        report = LintReport(findings=[make()])
        counts = report.rule_counts()
        assert counts[RULE_NULL_DEREF] == 1
        assert counts[RULE_DANGLING] == 0
        assert set(counts) == set(RULE_CATALOG)

    def test_max_severity(self):
        assert LintReport().max_severity() is None
        report = LintReport(
            findings=[make(severity="note", rule=RULE_DEAD_STORE), make()]
        )
        assert report.max_severity() == "warning"

    def test_fp_delta_is_comparison_minus_primary(self):
        report = LintReport(
            findings=[make()],
            compared_with="weihl",
            comparison_counts={RULE_NULL_DEREF: 3},
        )
        delta = report.fp_delta()
        assert delta[RULE_NULL_DEREF] == 2
        assert delta[RULE_DANGLING] == 0

    def test_fp_delta_empty_without_comparison(self):
        assert LintReport(findings=[make()]).fp_delta() == {}
