"""Detector behavior on targeted programs: each rule fires where it
should, stays quiet where it shouldn't, and flow sensitivity is
visible in the LR-vs-Weihl comparison."""

import pytest

from repro.lint import run_lint
from repro.lint.findings import (
    RULE_CONFLICT,
    RULE_DANGLING,
    RULE_DEAD_STORE,
    RULE_NULL_DEREF,
    RULE_UNINIT,
)

pytestmark = pytest.mark.lint


def rules(source, provider="lr", **kw):
    report = run_lint(source, provider=provider, **kw)
    return report, {f.rule for f in report.findings}


class TestUninit:
    def test_definite_uninit_is_error(self):
        report, seen = rules("int main() { int *p; int x; x = *p; return x; }")
        assert RULE_UNINIT in seen
        (finding,) = report.by_rule(RULE_UNINIT)
        assert finding.severity == "error"
        assert finding.name.base == "main::p"

    def test_maybe_uninit_is_warning(self):
        report, seen = rules(
            "int g; int main() { int *p; int x;"
            " if (g) { p = &x; } x = *p; return x; }"
        )
        (finding,) = report.by_rule(RULE_UNINIT)
        assert finding.severity == "warning"

    def test_initialized_on_all_paths_is_quiet(self):
        _, seen = rules(
            "int main() { int *p; int x; p = &x; x = *p; return x; }"
        )
        assert RULE_UNINIT not in seen


class TestNullDeref:
    def test_definitely_null_is_error(self):
        report, seen = rules("int main() { int *p, x; p = NULL; x = *p; return x; }")
        (finding,) = report.by_rule(RULE_NULL_DEREF)
        assert finding.severity == "error"

    def test_possibly_null_is_warning(self):
        report, _ = rules(
            "int g; int main() { int *p, x; x = 5; p = NULL;"
            " if (g) { p = &x; } x = *p; return x; }"
        )
        (finding,) = report.by_rule(RULE_NULL_DEREF)
        assert finding.severity == "warning"

    def test_flow_sensitive_kill_avoids_weihl_false_positive(self):
        # At `*pp = NULL` the flow-sensitive solution knows pp points
        # only at q; the flow-insensitive one smears the write over p
        # too and reports a possible null deref at `*p` — a false
        # positive LR avoids.  (A plain kill like `p = NULL; p = &x`
        # would not differentiate: the nullness dataflow itself is
        # flow-sensitive under every provider, only the alias queries
        # change.)
        report, seen = rules(
            "int g;"
            " int main() {"
            "   int **pp; int *p, *q; int x;"
            "   x = 1; p = &x; q = &x;"
            "   if (g) { pp = &p; } else { pp = &q; }"
            "   pp = &q;"
            "   *pp = NULL;"
            "   q = &x;"
            "   x = *p;"
            "   return x; }",
            compare_with="weihl",
        )
        assert RULE_NULL_DEREF not in seen
        assert report.comparison_counts.get(RULE_NULL_DEREF, 0) >= 1
        assert report.fp_delta()[RULE_NULL_DEREF] >= 1


class TestDangling:
    SOURCE = (
        "int *mk() { int local; int *p; p = &local; return p; }"
        " int main() { int *q; int x; q = mk(); x = *q; return x; }"
    )

    def test_escaping_local_is_error_with_witness(self):
        report, seen = rules(self.SOURCE)
        assert RULE_DANGLING in seen
        (finding,) = report.by_rule(RULE_DANGLING)
        assert finding.severity == "error"
        assert finding.name.base == "mk::local"
        assert finding.witnesses

    def test_local_that_does_not_escape_is_quiet(self):
        _, seen = rules(
            "int mk() { int local; int *p; p = &local; return *p; }"
            " int main() { return mk(); }"
        )
        assert RULE_DANGLING not in seen


class TestDeadStore:
    def test_overwritten_store_is_flagged(self):
        report, seen = rules("int main() { int x; x = 1; x = 2; return x; }")
        assert RULE_DEAD_STORE in seen
        assert any(f.name.base == "main::x" for f in report.by_rule(RULE_DEAD_STORE))

    def test_store_read_through_alias_is_live(self):
        _, seen = rules(
            "int main() { int *p, x; p = &x; x = 7; return *p; }"
        )
        assert RULE_DEAD_STORE not in seen


class TestConflicts:
    def test_alias_mediated_conflict_reported(self):
        report, seen = rules(
            "int main() { int *p, *q, a; a = 0; p = &a; q = p;"
            " *p = 1; a = a + *q; return a; }"
        )
        assert RULE_CONFLICT in seen
        (finding,) = report.by_rule(RULE_CONFLICT)
        assert finding.witnesses

    def test_independent_statements_are_quiet(self):
        _, seen = rules(
            "int main() { int a, b; a = 1; b = 2; return a + b; }"
        )
        assert RULE_CONFLICT not in seen


class TestSpans:
    def test_findings_carry_real_source_locations(self):
        source = (
            "int main() {\n"
            "    int *p;\n"
            "    int x;\n"
            "    x = *p;\n"
            "    return x;\n"
            "}\n"
        )
        report = run_lint(source, filename="spans.c")
        (finding,) = report.by_rule(RULE_UNINIT)
        assert finding.has_location
        assert finding.span.filename == "spans.c"
        assert finding.span.start.line == 4
        assert finding.location().startswith("spans.c:4:")

    def test_synthesized_nodes_fall_back_to_proc(self):
        # Dangling escapes anchor at the callee; whatever span they
        # get, location() must never crash and always says something.
        report = run_lint(TestDangling.SOURCE)
        for finding in report.findings:
            assert finding.location()
