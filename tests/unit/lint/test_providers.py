"""Provider plumbing: every detector runs against every alias
provider, and flow sensitivity only ever *removes* findings for the
monotone rules (LR ⊆ flow-insensitive, by match key)."""

import pytest

from repro.lint import PROVIDERS, make_provider, run_lint, self_check
from repro.lint.engine import LintInput
from repro.lint.findings import (
    RULE_CATALOG,
    RULE_CONFLICT,
    RULE_DANGLING,
    RULE_NULL_DEREF,
    RULE_UNINIT,
    SEVERITIES,
)
from repro.programs.fixtures import ALL_FIXTURES

pytestmark = pytest.mark.lint

#: Rules whose detectors consume the may-alias relation monotonically:
#: a coarser provider can only add findings.  Dead stores are the
#: anti-monotone exception (more aliases keep more stores live) and
#: the uninit detector is provider-insensitive.
MONOTONE_RULES = {RULE_NULL_DEREF, RULE_DANGLING, RULE_CONFLICT}


@pytest.mark.parametrize("provider", PROVIDERS)
@pytest.mark.parametrize("fixture", sorted(ALL_FIXTURES))
def test_every_provider_lints_every_fixture(provider, fixture):
    report = run_lint(ALL_FIXTURES[fixture], provider=provider, k=2)
    assert report.provider == provider
    for finding in report.findings:
        assert finding.rule in RULE_CATALOG
        assert finding.severity in SEVERITIES
        assert finding.provider == provider


@pytest.mark.parametrize("fixture", sorted(ALL_FIXTURES))
def test_lr_findings_subset_of_flow_insensitive(fixture):
    source = ALL_FIXTURES[fixture]
    lr = run_lint(source, provider="lr", k=2)
    weihl = run_lint(source, provider="weihl", k=2)
    lr_keys = {f.match_key() for f in lr.findings if f.rule in MONOTONE_RULES}
    weihl_keys = {f.match_key() for f in weihl.findings if f.rule in MONOTONE_RULES}
    assert lr_keys <= weihl_keys

    # The uninit detector only reads aliases to refine severities, so
    # the flagged variables are provider-independent.
    lr_uninit = {f.match_key() for f in lr.findings if f.rule == RULE_UNINIT}
    weihl_uninit = {f.match_key() for f in weihl.findings if f.rule == RULE_UNINIT}
    assert lr_uninit == weihl_uninit


def test_unknown_provider_rejected():
    with pytest.raises(ValueError, match="unknown provider"):
        run_lint("int main() { return 0; }", provider="steensgaard")


def test_prebuilt_solution_short_circuits_provider():
    source = ALL_FIXTURES["figure1"]
    lint_input = LintInput.from_source(source)
    solution = make_provider("lr", lint_input.analyzed, lint_input.icfg, k=2)
    via_solution = run_lint(lint_input, solution=solution, k=2)
    from_scratch = run_lint(source, provider="lr", k=2)
    assert [str(f) for f in via_solution.findings] == [
        str(f) for f in from_scratch.findings
    ]


def test_comparison_tags_only_sensitive_rules():
    source = (
        "int main() { int *p; int x; p = NULL; x = *p + *p; return x; }"
    )
    report = run_lint(source, compare_with="weihl")
    assert report.compared_with == "weihl"
    for finding in report.findings:
        if finding.rule == RULE_UNINIT:
            assert finding.also_weihl is None
        else:
            assert finding.also_weihl is not None


def test_self_check_is_clean():
    assert self_check() == []
