"""Oracle-backed validation: dynamically witnessed pointer bugs must
be covered by static findings, and the difftest harness treats an
uncovered event as a shrinkable soundness violation."""

import pytest

from repro.difftest import DifftestConfig, difftest_source
from repro.difftest.harness import CHECK_LINT_SOUNDNESS
from repro.interp.events import DANGLING_DEREF, UNINIT_READ
from repro.lint import LintReport, validate_lint
from repro.lint.validation import uncovered_events

pytestmark = pytest.mark.lint

DANGLING_PROGRAM = (
    "int *mk() { int local; int *p; p = &local; return p; }"
    " int main() { int *q; int x; q = mk(); x = *q; return x; }"
)
UNINIT_PROGRAM = "int main() { int *p; int x; x = *p; return x; }"
CLEAN_PROGRAM = (
    "int main() { int *p, x; x = 3; p = &x; return *p; }"
)


class TestValidateLint:
    def test_dangling_deref_witnessed_and_covered(self):
        validation = validate_lint(DANGLING_PROGRAM, draws=4)
        assert validation.events.by_kind(DANGLING_DEREF)
        assert validation.ok
        assert validation.uncovered == []

    def test_uninit_read_witnessed_and_covered(self):
        validation = validate_lint(UNINIT_PROGRAM, draws=4)
        assert validation.events.by_kind(UNINIT_READ)
        assert validation.ok

    def test_clean_program_witnesses_nothing(self):
        validation = validate_lint(CLEAN_PROGRAM, draws=4)
        assert len(validation.events) == 0
        assert validation.ok

    def test_uncovered_when_findings_suppressed(self):
        validation = validate_lint(DANGLING_PROGRAM, draws=4)
        empty = LintReport()
        missing = uncovered_events(validation.events, empty)
        assert missing
        assert {e.kind for e in missing} <= {UNINIT_READ, DANGLING_DEREF}

    def test_stats_dict_reports_coverage_and_delta(self):
        validation = validate_lint(DANGLING_PROGRAM, draws=4)
        stats = validation.stats_dict()
        assert stats["events"]["distinct_events"] >= 1
        assert stats["uncovered_events"] == []
        assert "fp_delta" in stats


class TestHarnessCheck:
    FAST = DifftestConfig(draws=4, run_baselines=False)

    def test_witnessed_bug_passes_when_reported(self):
        verdict = difftest_source(DANGLING_PROGRAM, self.FAST)
        check = verdict.check(CHECK_LINT_SOUNDNESS)
        assert check.status == "ok"
        assert verdict.stats["lint"]["events"]["distinct_events"] >= 1

    def test_check_is_not_vacuous(self, monkeypatch):
        # Suppress every detector: the witnessed dangling deref is now
        # uncovered and the harness must flag a violation.
        import repro.lint.engine as engine

        monkeypatch.setattr(engine, "run_detectors", lambda *a, **k: [])
        verdict = difftest_source(DANGLING_PROGRAM, self.FAST)
        check = verdict.check(CHECK_LINT_SOUNDNESS)
        assert check.status == "violation"
        assert check.violation_count >= 1
        assert not verdict.ok

    def test_disabled_by_config(self):
        config = DifftestConfig(
            draws=2, run_baselines=False, run_lint_check=False
        )
        verdict = difftest_source(CLEAN_PROGRAM, config)
        assert verdict.check(CHECK_LINT_SOUNDNESS) is None
