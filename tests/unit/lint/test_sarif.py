"""SARIF 2.1.0 emission: the acceptance check (`repro lint
examples/figure1.c --format sarif` is schema-valid) plus validator
sharpness on corrupted documents."""

import copy
import json
import pathlib

import pytest

from repro.lint import run_lint, render_sarif, to_sarif, validate_sarif
from repro.lint.findings import RULE_CATALOG
from repro.lint.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, TOOL_NAME

pytestmark = pytest.mark.lint

EXAMPLE = pathlib.Path(__file__).resolve().parents[3] / "examples" / "figure1.c"


@pytest.fixture(scope="module")
def figure1_sarif():
    report = run_lint(EXAMPLE.read_text(), filename=str(EXAMPLE), compare_with="weihl")
    return report, to_sarif(report, filename=str(EXAMPLE))


class TestEmission:
    def test_example_figure1_is_schema_valid(self, figure1_sarif):
        report, doc = figure1_sarif
        assert report.findings, "example must produce diagnostics"
        assert validate_sarif(doc) == []

    def test_envelope(self, figure1_sarif):
        _, doc = figure1_sarif
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert {rule["id"] for rule in driver["rules"]} == set(RULE_CATALOG)

    def test_results_reference_rules_consistently(self, figure1_sarif):
        report, doc = figure1_sarif
        run = doc["runs"][0]
        assert len(run["results"]) == len(report.findings)
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        for result in run["results"]:
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_provenance_lands_in_properties(self, figure1_sarif):
        _, doc = figure1_sarif
        tagged = [
            r
            for r in doc["runs"][0]["results"]
            if "alsoFlaggedByWeihl" in r["properties"]
        ]
        assert tagged, "comparison run must tag provider-sensitive results"

    def test_render_sarif_round_trips(self, figure1_sarif):
        report, _ = figure1_sarif
        doc = json.loads(render_sarif(report, filename=str(EXAMPLE)))
        assert validate_sarif(doc) == []

    def test_in_memory_filenames_become_legal_uris(self):
        report = run_lint(
            "int main() { int *p; int x; x = *p; return x; }",
            filename="<stdin>",
        )
        doc = to_sarif(report, filename="<stdin>")
        uri = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "inmemory://stdin"
        assert validate_sarif(doc) == []


class TestValidator:
    """The structural validator must actually reject broken documents —
    otherwise the emission tests above are vacuous."""

    @pytest.fixture()
    def doc(self, figure1_sarif):
        return copy.deepcopy(figure1_sarif[1])

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["document is not a JSON object"]

    def test_rejects_wrong_version(self, doc):
        doc["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(doc))

    def test_rejects_missing_runs(self, doc):
        del doc["runs"]
        assert any("runs" in p for p in validate_sarif(doc))

    def test_rejects_bad_level(self, doc):
        doc["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in p for p in validate_sarif(doc))

    def test_rejects_unknown_rule_id(self, doc):
        doc["runs"][0]["results"][0]["ruleId"] = "made-up-rule"
        assert any("ruleId" in p for p in validate_sarif(doc))

    def test_rejects_inconsistent_rule_index(self, doc):
        doc["runs"][0]["results"][0]["ruleIndex"] = 99
        assert any("ruleIndex" in p for p in validate_sarif(doc))

    def test_rejects_zero_based_region(self, doc):
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(doc))
