"""Unit tests for the type-based baseline."""

from repro.baselines.typebased import typebased_aliases
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.names import AliasPair, ObjectName


def run(source, k=2):
    analyzed = parse_and_analyze(source)
    return typebased_aliases(analyzed, build_icfg(analyzed), k=k)


class TestAddressTaken:
    def test_address_of_in_assignment(self):
        result = run("int *p, v; int main() { p = &v; return 0; }")
        assert "v" in result.address_taken

    def test_address_of_in_call(self):
        result = run(
            "void f(int *a) { } int main() { int x; f(&x); return 0; }"
        )
        assert "main::x" in result.address_taken

    def test_untaken_variable_not_exposed(self):
        result = run("int *p, v, w; int main() { p = &v; w = 1; return 0; }")
        assert "w" not in result.address_taken


class TestAliasing:
    def test_same_type_derefs_alias(self):
        result = run("int *p, *q, v; int main() { p = &v; q = p; return 0; }")
        assert result.may_alias(ObjectName("p").deref(), ObjectName("q").deref())

    def test_different_pointee_types_do_not_alias(self):
        result = run(
            """
            struct node { int v; struct node *next; };
            int *p; struct node *q; int x;
            int main() { p = &x; q = NULL; return 0; }
            """
        )
        assert not result.may_alias(ObjectName("p").deref(), ObjectName("q").deref())

    def test_address_taken_var_aliases_deref(self):
        result = run("int *p, v; int main() { p = &v; return 0; }")
        assert result.may_alias(ObjectName("p").deref(), ObjectName("v"))

    def test_coarser_than_everything(self):
        # Even never-connected pointers of the same type alias here —
        # this is the floor, not a precise analysis.
        result = run(
            "int *p, *q, a, b; int main() { p = &a; q = &b; return 0; }"
        )
        assert result.may_alias(ObjectName("p").deref(), ObjectName("q").deref())

    def test_superset_of_landi_ryder(self):
        from repro.core import analyze_program

        source = """
        int *p, *q, a, b;
        int main() { p = &a; q = p; b = *q; return 0; }
        """
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        lr = analyze_program(analyzed, icfg, k=2)
        tb = typebased_aliases(analyzed, icfg, k=2)
        for pair in lr.program_aliases():
            if pair.first.truncated or pair.second.truncated:
                continue
            assert pair in tb.aliases, str(pair)
