"""Unit tests for the Weihl [Wei80] baseline."""

import pytest

from repro.baselines import WeihlAnalysis, weihl_aliases
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.names import AliasPair, ObjectName


def run(source, k=3):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    return weihl_aliases(analyzed, icfg, k=k)


class TestSeeding:
    def test_assignment_seeds_star_pair(self):
        result = run("int *p, *q, v; int main() { q = &v; p = q; return 0; }")
        assert result.may_alias(ObjectName("p").deref(), ObjectName("q").deref())

    def test_address_of_seeds_direct(self):
        result = run("int *p, v; int main() { p = &v; return 0; }")
        assert result.may_alias(ObjectName("p").deref(), ObjectName("v"))

    def test_parameter_binding_seeds(self):
        result = run(
            """
            int *g;
            void f(int *a) { }
            int main() { f(g); return 0; }
            """
        )
        assert result.may_alias(ObjectName("f::a").deref(), ObjectName("g").deref())


class TestFlowInsensitivity:
    def test_killed_alias_still_reported(self):
        # Weihl ignores control flow: both targets are merged even
        # though the first assignment is dead.
        result = run(
            "int *p, a, b; int main() { p = &a; p = &b; return 0; }"
        )
        star_p = ObjectName("p").deref()
        assert result.may_alias(star_p, ObjectName("a"))
        assert result.may_alias(star_p, ObjectName("b"))
        # ...and transitivity invents (a, b).
        assert result.may_alias(ObjectName("a"), ObjectName("b"))

    def test_context_insensitive_merging(self):
        # The realizable-path test: Weihl merges both call sites.
        result = run(
            """
            int *x, *y, a, b;
            int *id(int *p) { return p; }
            int main() { x = id(&a); y = id(&b); return 0; }
            """
        )
        assert result.may_alias(ObjectName("x").deref(), ObjectName("b"))
        assert result.may_alias(ObjectName("y").deref(), ObjectName("a"))


class TestClosureProperties:
    def test_alias_count_matches_pairs(self):
        result = run("int *p, *q, v; int main() { q = &v; p = q; return 0; }")
        assert result.alias_count == len(result.aliases)

    def test_congruence_extends_chains(self):
        result = run(
            """
            struct node { int v; struct node *next; };
            struct node *p, *q;
            int main() { p = q; return 0; }
            """,
            k=2,
        )
        a = ObjectName("p").deref().field("next")
        b = ObjectName("q").deref().field("next")
        assert result.may_alias(a, b)

    def test_empty_program_has_no_aliases(self):
        result = run("int main() { return 0; }")
        assert result.alias_count == 0

    def test_seed_count_reported(self):
        result = run("int *p, v; int main() { p = &v; return 0; }")
        assert result.seed_count >= 1

    def test_materialize_false_skips_pairs(self):
        analyzed = parse_and_analyze("int *p, v; int main() { p = &v; return 0; }")
        icfg = build_icfg(analyzed)
        result = weihl_aliases(analyzed, icfg, materialize=False)
        assert result.aliases == set()
        assert result.alias_count > 0

    def test_unification_budget_enforced(self):
        analyzed = parse_and_analyze(
            "int *p, *q, v; int main() { q = &v; p = q; return 0; }"
        )
        icfg = build_icfg(analyzed)
        with pytest.raises(RuntimeError):
            WeihlAnalysis(analyzed, icfg, max_pairs=1).run()
