"""Unit tests for the Andersen-style points-to baseline."""

from repro.baselines import andersen_aliases
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.names import ObjectName, AliasPair


def run(source):
    analyzed = parse_and_analyze(source)
    return andersen_aliases(analyzed, build_icfg(analyzed))


def aliased(result, a, b):
    return AliasPair(ObjectName(a).deref(), ObjectName(b).deref()) in result.aliases


class TestBasics:
    def test_copy_aliases_pointers(self):
        result = run("int *p, *q, v; int main() { q = &v; p = q; return 0; }")
        assert aliased(result, "p", "q")

    def test_distinct_targets_not_aliased(self):
        result = run(
            "int *p, *q, a, b; int main() { p = &a; q = &b; return 0; }"
        )
        assert not aliased(result, "p", "q")

    def test_flow_insensitive_merges(self):
        result = run("int *p, a, b; int main() { p = &a; p = &b; return 0; }")
        pts = result.points_to.get("p", set())
        assert len(pts) == 2

    def test_malloc_sites_distinct(self):
        result = run(
            "int *p, *q; int main() { p = malloc(4); q = malloc(4); return 0; }"
        )
        assert not aliased(result, "p", "q")

    def test_store_through_pointer(self):
        result = run(
            """
            int **pp, *p, *q, v;
            int main() { q = &v; pp = &p; *pp = q; return 0; }
            """
        )
        assert aliased(result, "p", "q")

    def test_load_through_pointer(self):
        result = run(
            """
            int **pp, *p, *q, v;
            int main() { p = &v; pp = &p; q = *pp; return 0; }
            """
        )
        assert aliased(result, "p", "q")

    def test_parameter_flow(self):
        result = run(
            """
            int *g;
            void f(int *a) { g = a; }
            int v;
            int main() { f(&v); return 0; }
            """
        )
        pts = result.points_to.get("g", set())
        assert "v" in pts

    def test_context_insensitive_merging(self):
        result = run(
            """
            int *x, *y, a, b;
            int *id(int *p) { return p; }
            int main() { x = id(&a); y = id(&b); return 0; }
            """
        )
        # Unlike Landi/Ryder, Andersen merges the two calls.
        assert aliased(result, "x", "y")
