"""Unit tests for the pycparser adapter (skipped without pycparser)."""

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.frontend import UnsupportedFeatureError, analyze
from repro.frontend.pycparser_bridge import parse_c
from repro.icfg import build_icfg


def analyze_c(source):
    return analyze(parse_c(source))


class TestConversion:
    def test_simple_program(self):
        ap = analyze_c(
            """
            int *g, v;
            int main() { g = &v; return 0; }
            """
        )
        assert "g" in ap.symbols.globals
        build_icfg(ap).validate()

    def test_struct_and_arrow(self):
        ap = analyze_c(
            """
            struct node { int v; struct node *next; };
            struct node *head;
            int main() { head->v = 1; return 0; }
            """
        )
        assert ap.ast.structs[0].name == "node"

    def test_functions_and_calls(self):
        ap = analyze_c(
            """
            int *identity(int *p) { return p; }
            int *r; int v;
            int main() { r = identity(&v); return 0; }
            """
        )
        assert ap.symbols.function("identity").return_slot is not None

    def test_control_flow(self):
        ap = analyze_c(
            """
            int main() {
                int i, s;
                s = 0;
                for (i = 0; i < 3; i = i + 1) { s = s + i; }
                while (s > 0) { s = s - 1; }
                do { s = s + 1; } while (s < 2);
                if (s) { s = 0; } else { s = 1; }
                return s;
            }
            """
        )
        build_icfg(ap).validate()

    def test_switch(self):
        ap = analyze_c(
            """
            int main() {
                int x;
                x = 1;
                switch (x) { case 1: x = 2; break; default: x = 3; }
                return x;
            }
            """
        )
        build_icfg(ap).validate()

    def test_typedef(self):
        ap = analyze_c("typedef int *intp; intp g; int main() { return 0; }")
        assert "g" in ap.symbols.globals

    def test_full_analysis_matches_native_frontend(self):
        """The bridge and the native parser must agree on the alias
        solution for a shared-subset program."""
        from repro import analyze_program, parse_and_analyze
        from repro.core import analyze_program as ap_run

        source = """
        int *g1, g2;
        void p(void) { g1 = &g2; }
        int main() {
            int **l1, *l2;
            l2 = &g2; g1 = &g2; l1 = &g1;
            p();
            return 0;
        }
        """
        native = analyze_program(parse_and_analyze(source), k=3)
        bridged = analyze_program(analyze(parse_c(source)), k=3)
        native_pairs = {str(p) for p in native.program_aliases()}
        bridged_pairs = {str(p) for p in bridged.program_aliases()}
        assert native_pairs == bridged_pairs


class TestRejections:
    def test_union_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            analyze_c("union u { int a; float b; }; union u v; int main() { return 0; }")

    def test_cast_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            analyze_c("int main() { int x; x = (int) 1.5; return x; }")

    def test_varargs_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            analyze_c("int f(int a, ...); int main() { return 0; }")
