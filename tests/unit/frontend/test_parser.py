"""Unit tests for the MiniC parser."""

import pytest

from repro.frontend import (
    ParseError,
    PointerType,
    StructType,
    UnsupportedFeatureError,
    parse,
)
from repro.frontend import ast_nodes as ast


class TestDeclarations:
    def test_global_variable(self):
        prog = parse("int x;")
        assert len(prog.globals) == 1
        assert prog.globals[0].name == "x"

    def test_multiple_declarators(self):
        prog = parse("int a, *b, **c;")
        names = [d.name for d in prog.globals]
        assert names == ["a", "b", "c"]
        assert isinstance(prog.globals[1].var_type, PointerType)
        assert isinstance(prog.globals[2].var_type.pointee, PointerType)

    def test_array_declarator(self):
        prog = parse("int a[10];")
        assert prog.globals[0].var_type.is_array()
        assert prog.globals[0].var_type.size == 10

    def test_two_dimensional_array(self):
        prog = parse("int grid[3][4];")
        t = prog.globals[0].var_type
        assert t.is_array() and t.element.is_array()

    def test_global_initializer(self):
        prog = parse("int x = 5;")
        assert isinstance(prog.globals[0].init, ast.IntLit)

    def test_struct_definition(self):
        prog = parse("struct node { int v; struct node *next; };")
        assert prog.structs[0].name == "node"
        assert [f.name for f in prog.structs[0].fields] == ["v", "next"]

    def test_typedef_resolves(self):
        prog = parse("typedef int *intptr; intptr p;")
        assert isinstance(prog.globals[0].var_type, PointerType)

    def test_function_definition(self):
        prog = parse("int f(int a, int *b) { return a; }")
        fn = prog.functions[0]
        assert fn.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_parameter_list(self):
        prog = parse("int f(void) { return 0; }")
        assert prog.functions[0].params == []

    def test_prototype(self):
        prog = parse("int f(int x);")
        assert any(isinstance(d, ast.FuncDecl) for d in prog.decls)

    def test_unsigned_long_folds_to_int(self):
        prog = parse("unsigned long x;")
        assert str(prog.globals[0].var_type) == "int"


class TestUnsupportedFeatures:
    def test_function_pointer_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int (*fp)(int);")

    def test_cast_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int main() { int x; x = (int) 3.5; return x; }")

    def test_nested_struct_definition_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("struct a { struct b { int x; } inner; };")

    def test_brace_initializer_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int a[2] = {1, 2};")

    def test_call_through_expression_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int main() { fns[0](); return 0; }")

    def test_parenthesized_direct_call_allowed(self):
        # (f)() is still a direct call to f.
        prog = parse("int f(void) { return 0; } int main() { (f)(); return 0; }")
        assert prog.functions[1].name == "main"

    def test_for_loop_declaration_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse("int main() { for (int i = 0; i < 3; i = i + 1) { } return 0; }")


class TestStatements:
    def body(self, text):
        return parse("int main() { " + text + " return 0; }").functions[0].body.items

    def test_if_else(self):
        items = self.body("if (1) { } else { }")
        assert isinstance(items[0], ast.If)
        assert items[0].otherwise is not None

    def test_dangling_else_binds_to_inner_if(self):
        items = self.body("if (1) if (2) ; else ;")
        outer = items[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_while(self):
        items = self.body("while (1) { }")
        assert isinstance(items[0], ast.While)

    def test_do_while(self):
        items = self.body("do { } while (0);")
        assert isinstance(items[0], ast.DoWhile)

    def test_for_with_all_clauses(self):
        items = self.body("for (i = 0; i < 3; i = i + 1) { }")
        stmt = items[0]
        assert stmt.init is not None and stmt.cond is not None and stmt.step is not None

    def test_for_with_empty_clauses(self):
        items = self.body("for (;;) { break; }")
        stmt = items[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch_with_cases_and_default(self):
        items = self.body("switch (x) { case 1: break; case 2: break; default: break; }")
        stmt = items[0]
        assert len(stmt.cases) == 3
        assert stmt.cases[2].value is None

    def test_goto_and_label(self):
        items = self.body("goto done; done: ;")
        assert isinstance(items[0], ast.Goto)
        assert isinstance(items[1], ast.Label)

    def test_local_declarations(self):
        items = self.body("int x; int *p;")
        assert all(isinstance(i, ast.VarDecl) for i in items[:2])


class TestExpressions:
    def expr(self, text):
        prog = parse("int main() { x = " + text + "; return 0; }")
        stmt = prog.functions[0].body.items[0]
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_unary_deref_chain(self):
        e = self.expr("**pp")
        assert e.op == "*" and e.operand.op == "*"

    def test_address_of(self):
        e = self.expr("&v")
        assert e.op == "&"

    def test_arrow_chain(self):
        e = self.expr("p->next->next")
        assert isinstance(e, ast.Member) and e.arrow
        assert isinstance(e.base, ast.Member) and e.base.arrow

    def test_member_dot(self):
        e = self.expr("s.field")
        assert isinstance(e, ast.Member) and not e.arrow

    def test_index(self):
        e = self.expr("a[i]")
        assert isinstance(e, ast.Index)

    def test_call_with_args(self):
        e = self.expr("f(1, &v, p)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 3

    def test_conditional(self):
        e = self.expr("c ? a : b")
        assert isinstance(e, ast.Conditional)

    def test_chained_assignment_right_associative(self):
        prog = parse("int main() { a = b = c; return 0; }")
        outer = prog.functions[0].body.items[0].expr
        assert isinstance(outer.value, ast.Assign)

    def test_compound_assignment(self):
        prog = parse("int main() { a += 2; return 0; }")
        stmt = prog.functions[0].body.items[0]
        assert stmt.expr.op == "+="

    def test_null_literal(self):
        e = self.expr("NULL")
        assert isinstance(e, ast.NullLit)

    def test_parenthesized_grouping(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert e.left.op == "+"

    def test_comparison_chain(self):
        e = self.expr("a < b == c")
        assert e.op == "=="

    def test_logical_or_lowest(self):
        e = self.expr("a && b || c")
        assert e.op == "||"

    def test_sizeof_type(self):
        e = self.expr("sizeof(int)")
        assert isinstance(e, ast.SizeOf) and e.type_name is not None

    def test_sizeof_expr(self):
        e = self.expr("sizeof x")
        assert isinstance(e, ast.SizeOf) and e.operand is not None


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int main() { x = (1; return 0; }")

    def test_garbage_after_expression(self):
        with pytest.raises(ParseError):
            parse("int main() { x = ; return 0; }")

    def test_struct_redefinition_rejected(self):
        with pytest.raises(ValueError):
            parse("struct s { int a; }; struct s { int b; };")
