"""Semantic checks around labels, switch bodies and scoping corners."""

import pytest

from repro.frontend import TypeError_, parse_and_analyze


class TestLabels:
    def test_label_inside_switch_found(self):
        parse_and_analyze(
            """
            int main() {
                int x;
                switch (x) {
                    case 1:
                        goto done;
                    default:
                        x = 2;
                }
                done: return x;
            }
            """
        )

    def test_label_inside_loop_found(self):
        parse_and_analyze(
            """
            int main() {
                int i;
                for (i = 0; i < 3; i = i + 1) {
                    inner: i = i + 1;
                    if (i < 2) { goto inner; }
                }
                return 0;
            }
            """
        )

    def test_labels_are_per_function(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                """
                void f(void) { spot: return; }
                int main() { goto spot; return 0; }
                """
            )


class TestScopingCorners:
    def test_block_scope_ends(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "int main() { { int x; x = 1; } x = 2; return 0; }"
            )

    def test_param_visible_in_body(self):
        parse_and_analyze("int f(int a) { return a + 1; } int main() { return 0; }")

    def test_param_shadowed_by_local_block(self):
        ap = parse_and_analyze(
            """
            int f(int a) {
                { int a; a = 2; }
                return a;
            }
            int main() { return 0; }
            """
        )
        info = ap.symbols.function("f")
        assert len(info.locals) == 1
        assert info.locals[0].uid != info.params[0].uid

    def test_global_initializers_checked_after_collection(self):
        # Globals are collected before initializers are checked, so a
        # forward reference at file scope is accepted (deliberately more
        # lenient than strict C; the lowering order is by declaration).
        parse_and_analyze("int *p = &later; int later; int main() { return 0; }")

    def test_global_initializer_cannot_see_locals(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "int *p = &oops; int main() { int oops; return 0; }"
            )

    def test_global_initializer_forward_use_after_decl(self):
        parse_and_analyze("int v; int *p = &v; int main() { return 0; }")


class TestCallChecking:
    def test_prototype_then_definition(self):
        parse_and_analyze(
            """
            int twice(int x);
            int main() { return twice(2); }
            int twice(int x) { return x + x; }
            """
        )

    def test_recursive_through_prototype(self):
        parse_and_analyze(
            """
            void pong(int d);
            void ping(int d) { if (d > 0) { pong(d - 1); } }
            void pong(int d) { if (d > 0) { ping(d - 1); } }
            int main() { ping(4); return 0; }
            """
        )

    def test_struct_argument_type_mismatch(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                """
                struct a { int x; };
                struct b { int y; };
                void f(struct a v) { }
                int main() { struct b w; f(w); return 0; }
                """
            )
