"""Unit tests for the type representations."""

from repro.frontend import ArrayType, PointerType, ScalarType, TypeTable, scalar
from repro.frontend.types import pointer_depth, strip_pointers


class TestScalars:
    def test_interned(self):
        assert scalar("int") is scalar("int")

    def test_void_detection(self):
        assert scalar("void").is_void()
        assert not scalar("int").is_void()

    def test_str(self):
        assert str(scalar("char")) == "char"


class TestPointers:
    def test_pointer_depth(self):
        t = PointerType(PointerType(scalar("int")))
        assert pointer_depth(t) == 2
        assert pointer_depth(scalar("int")) == 0

    def test_strip_pointers(self):
        t = PointerType(PointerType(scalar("int")))
        assert strip_pointers(t) == scalar("int")

    def test_has_pointers(self):
        assert PointerType(scalar("int")).has_pointers()
        assert not scalar("int").has_pointers()

    def test_str(self):
        assert str(PointerType(scalar("int"))) == "int*"


class TestArrays:
    def test_decay(self):
        arr = ArrayType(scalar("int"), 10)
        assert arr.decayed() == PointerType(scalar("int"))

    def test_scalar_decay_identity(self):
        assert scalar("int").decayed() == scalar("int")

    def test_array_of_pointers_has_pointers(self):
        assert ArrayType(PointerType(scalar("int")), 4).has_pointers()

    def test_str(self):
        assert str(ArrayType(scalar("int"), 3)) == "int[3]"


class TestStructs:
    def test_interned_by_name(self):
        table = TypeTable()
        assert table.struct("node") is table.struct("node")

    def test_definition_completes(self):
        table = TypeTable()
        st = table.struct("node")
        assert not st.complete
        table.define_struct("node", [("v", scalar("int"))])
        assert st.complete
        assert st.field_type("v") == scalar("int")

    def test_redefinition_rejected(self):
        table = TypeTable()
        table.define_struct("s", [])
        try:
            table.define_struct("s", [])
        except ValueError:
            return
        raise AssertionError("expected ValueError")

    def test_recursive_struct_has_pointers(self):
        table = TypeTable()
        st = table.struct("node")
        table.define_struct(
            "node", [("v", scalar("int")), ("next", PointerType(st))]
        )
        assert st.has_pointers()

    def test_recursive_struct_without_pointers_terminates(self):
        # has_pointers must not loop on self-referential field types.
        table = TypeTable()
        st = table.struct("odd")
        table.define_struct("odd", [("v", scalar("int"))])
        assert not st.has_pointers()

    def test_unknown_field_is_none(self):
        table = TypeTable()
        table.define_struct("s", [("a", scalar("int"))])
        assert table.struct("s").field_type("b") is None

    def test_typedefs(self):
        table = TypeTable()
        table.add_typedef("intp", PointerType(scalar("int")))
        assert table.is_typedef("intp")
        assert table.typedef("intp") == PointerType(scalar("int"))
        assert not table.is_typedef("other")
