"""Lenient-mode pycparser lowering: coverage ledger, havoc shuffles,
comment/directive preprocessing, and the strict-mode conversion paths
(switch, typedef chains, prototypes) plus span threading on rejection.
"""

import pytest

pycparser = pytest.importorskip("pycparser")

from repro.frontend import UnsupportedFeatureError, analyze
from repro.frontend.parser import parse
from repro.frontend.printer import print_program
from repro.frontend.pycparser_bridge import (
    parse_c,
    parse_c_lenient,
    strip_comments,
)
from repro.icfg import build_icfg


def lenient(source):
    unit = parse_c_lenient(source)
    analyzed = analyze(unit.program)
    build_icfg(analyzed).validate()
    return unit


class TestPreprocessing:
    def test_strict_mode_strips_comments(self):
        program = parse_c(
            "/* leading */ int main() { return 0; /* trailing */ } // eol"
        )
        assert program.functions[0].name == "main"

    def test_strip_comments_preserves_line_count(self):
        source = "int a;\n/* two\nlines */\nint b; // tail\n"
        stripped = strip_comments(source)
        assert stripped.count("\n") == source.count("\n")
        assert "two" not in stripped and "tail" not in stripped

    def test_strip_comments_respects_string_literals(self):
        source = 'char *s = "/* not a comment */"; // real\n'
        stripped = strip_comments(source)
        assert '"/* not a comment */"' in stripped
        assert "real" not in stripped

    def test_directives_blanked_and_ledgered(self):
        unit = lenient(
            "#define LIMIT 4\n"
            "int main() { return 0; }\n"
        )
        kinds = unit.ledger.counts()
        assert kinds.get("directive-dropped") == 1
        event = unit.ledger.events[0]
        assert event.detail == "define" and event.line == 1

    def test_directive_continuation_blanked(self):
        unit = lenient(
            "#define BIG \\\n    1\n"
            "int main() { return 0; }\n"
        )
        assert unit.ledger.counts().get("directive-dropped") == 1


class TestLenientLowering:
    def test_cast_erased(self):
        unit = lenient(
            """
            extern void *malloc(unsigned long n);
            int main() { int *p; p = (int *)malloc(4); return 0; }
            """
        )
        assert unit.ledger.counts().get("cast-erased") == 1
        assert unit.ledger.functions["main"] == "lowered"

    def test_union_lowered_to_field_split_struct(self):
        unit = lenient(
            """
            union u { int *p; int v; };
            union u g;
            int main() { g.p = 0; return 0; }
            """
        )
        assert any(
            s.name.startswith("__union_") for s in unit.program.structs
        )
        assert unit.ledger.counts().get("union-field-split", 0) >= 1

    def test_statement_havoc_mentions_pointers(self):
        unit = lenient(
            """
            struct node { struct node *next; };
            int touch(struct node *a) {
                int (*fp)(int);
                fp = 0;
                return fp(1) + (a != 0);
            }
            int main() { return 0; }
            """
        )
        assert unit.ledger.counts().get("stmt-havoc") == 1
        assert unit.ledger.functions["touch"] == "havocked"
        assert unit.ledger.coverage_percent < 100.0
        printed = print_program(unit.program)
        assert "rand" in printed  # havoc arms are guarded

    def test_clean_file_has_clean_ledger(self):
        unit = lenient("int g; int main() { g = 1; return g; }")
        assert unit.ledger.clean
        assert unit.ledger.coverage_percent == 100.0

    def test_function_address_erased(self):
        unit = lenient(
            """
            int inc(int x) { return x + 1; }
            int main() { int fp; fp = inc; return 0; }
            """
        )
        assert unit.ledger.counts().get("function-address-erased") == 1

    def test_for_decl_hoisted(self):
        unit = lenient(
            "int main() { int s = 0; for (int i = 0; i < 3; i++) { s += i; } return s; }"
        )
        assert unit.ledger.counts().get("for-decl-hoisted") == 1

    def test_array_initializer_expanded(self):
        unit = lenient("int main() { int a[3] = {1, 2, 3}; return a[0]; }")
        assert unit.ledger.counts().get("initializer-expanded") == 1

    def test_enum_lowered_to_int_constants(self):
        unit = lenient(
            "enum color { RED, GREEN, BLUE };\n"
            "int main() { return GREEN; }\n"
        )
        assert unit.ledger.counts().get("enum-lowered") == 1

    def test_varargs_prototype_and_call_truncated(self):
        unit = lenient(
            """
            extern int seq(int first, ...);
            int main() { return seq(1, 2, 3); }
            """
        )
        counts = unit.ledger.counts()
        assert counts.get("varargs-dropped") == 1
        assert counts.get("varargs-call-truncated") == 1

    def test_printed_program_reparses_natively(self):
        unit = parse_c_lenient(
            """
            typedef struct node { struct node *next; } node_t;
            extern void *malloc(unsigned long n);
            node_t *cons(node_t *tail) {
                node_t *n = (node_t *)malloc(sizeof(node_t));
                if (n != 0) { n->next = tail; }
                return n;
            }
            int main() { node_t *l = cons(cons(0)); return l != 0; }
            """
        )
        printed = print_program(unit.program)
        reparsed = parse(printed)
        analyzed = analyze(reparsed)
        build_icfg(analyzed).validate()


class TestStrictPaths:
    """Satellite coverage for conversion paths the corpus leans on."""

    def test_switch_with_multiple_statements_per_case(self):
        program = parse_c(
            """
            int main() {
                int x, y;
                x = 1; y = 0;
                switch (x) {
                case 0:
                    y = 1;
                    y = y + 1;
                    break;
                case 1:
                case 2:
                    y = 2;
                    break;
                default:
                    y = 3;
                }
                return y;
            }
            """
        )
        analyzed = analyze(program)
        build_icfg(analyzed).validate()

    def test_typedef_resolution_chain(self):
        program = parse_c(
            """
            typedef int *intp;
            typedef intp handle;
            handle g;
            int v;
            int main() { g = &v; return *g; }
            """
        )
        analyzed = analyze(program)
        assert str(analyzed.symbols.globals["g"].type) == "int*"

    def test_prototype_only_declaration_then_definition(self):
        program = parse_c(
            """
            int *pick(int *a, int *b);
            int v, w;
            int main() { int *r; r = pick(&v, &w); return *r; }
            int *pick(int *a, int *b) { if (v) { return a; } return b; }
            """
        )
        analyzed = analyze(program)
        assert analyzed.symbols.function("pick").return_slot is not None
        build_icfg(analyzed).validate()

    def test_unsupported_construct_carries_real_span(self):
        source = (
            "int g;\n"
            "union u { int a; float b; };\n"
            "int main() { return 0; }\n"
        )
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            parse_c(source)
        assert excinfo.value.span.start.line == 2

    def test_cast_rejection_carries_real_span(self):
        source = (
            "extern void *malloc(unsigned long n);\n"
            "int main() {\n"
            "    int *p;\n"
            "    p = (int *)malloc(4);\n"
            "    return 0;\n"
            "}\n"
        )
        with pytest.raises(UnsupportedFeatureError) as excinfo:
            parse_c(source)
        assert excinfo.value.span.start.line == 4
