"""Unit tests for semantic analysis (name resolution + type checking)."""

import pytest

from repro.frontend import (
    PointerType,
    StructType,
    SymbolKind,
    TypeError_,
    UnsupportedFeatureError,
    parse_and_analyze,
)


class TestResolution:
    def test_globals_resolved(self):
        ap = parse_and_analyze("int g; int main() { g = 1; return g; }")
        assert "g" in ap.symbols.globals

    def test_locals_get_qualified_uids(self):
        ap = parse_and_analyze("int main() { int x; x = 1; return x; }")
        info = ap.symbols.function("main")
        assert info.locals[0].uid == "main::x"

    def test_params_resolved(self):
        ap = parse_and_analyze("int f(int *p) { return *p; } int main() { return 0; }")
        info = ap.symbols.function("f")
        assert info.params[0].uid == "f::p"
        assert info.params[0].kind is SymbolKind.PARAM

    def test_shadowing_gets_distinct_uids(self):
        ap = parse_and_analyze(
            "int main() { int x; { int x; x = 2; } x = 1; return x; }"
        )
        uids = [s.uid for s in ap.symbols.function("main").locals]
        assert len(uids) == len(set(uids)) == 2

    def test_local_shadows_global(self):
        ap = parse_and_analyze("int x; int main() { int x; x = 1; return x; }")
        fn = ap.function("main")
        stmt = fn.body.items[1]
        target = stmt.expr.target
        assert target.symbol.uid == "main::x"

    def test_undeclared_identifier_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { y = 1; return 0; }")

    def test_redeclaration_in_same_scope_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { int x; int x; return 0; }")

    def test_pointer_return_slot_created(self):
        ap = parse_and_analyze("int *f(void) { return NULL; } int main() { return 0; }")
        assert ap.symbols.function("f").return_slot is not None
        assert ap.symbols.function("f").return_slot.uid == "f$ret"

    def test_scalar_return_has_no_slot(self):
        ap = parse_and_analyze("int f(void) { return 1; } int main() { return 0; }")
        assert ap.symbols.function("f").return_slot is None


class TestTypeChecking:
    def test_deref_non_pointer_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { int x; return *x; }")

    def test_deref_void_pointer_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("void *v; int main() { return *v; }")

    def test_arrow_on_non_pointer_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "struct s { int f; }; struct s v; int main() { return v->f; }"
            )

    def test_dot_on_pointer_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "struct s { int f; }; struct s *p; int main() { return p.f; }"
            )

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "struct s { int f; }; struct s v; int main() { return v.g; }"
            )

    def test_address_of_rvalue_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { int *p; p = &3; return 0; }")

    def test_pointer_from_int_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { int *p; int x; x = 5; p = x; return 0; }")

    def test_null_assignable_to_pointer(self):
        parse_and_analyze("int main() { int *p; p = NULL; return 0; }")

    def test_malloc_assignable_to_any_pointer(self):
        parse_and_analyze(
            "struct s { int f; }; int main() { struct s *p; p = malloc(4); return 0; }"
        )

    def test_call_arity_checked(self):
        with pytest.raises(TypeError_):
            parse_and_analyze(
                "int f(int a) { return a; } int main() { return f(1, 2); }"
            )

    def test_void_function_returning_value_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("void f(void) { return 3; } int main() { return 0; }")

    def test_known_externals_allowed(self):
        parse_and_analyze('int main() { printf("x"); return 0; }')

    def test_unknown_external_with_pointer_args_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_and_analyze("int main() { int x; mystery(&x); return 0; }")

    def test_unknown_external_scalar_warns(self):
        ap = parse_and_analyze("int main() { return mystery(1); }")
        assert any("mystery" in d.message for d in ap.diagnostics.warnings)

    def test_variable_of_void_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("void v; int main() { return 0; }")

    def test_incomplete_struct_by_value_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("struct s; struct s v; int main() { return 0; }")

    def test_pointer_to_incomplete_struct_allowed(self):
        parse_and_analyze("struct s *p; struct s { int f; }; int main() { return 0; }")

    def test_goto_undefined_label_rejected(self):
        with pytest.raises(TypeError_):
            parse_and_analyze("int main() { goto nowhere; return 0; }")

    def test_expression_types_annotated(self):
        ap = parse_and_analyze("int *p, v; int main() { p = &v; return 0; }")
        assign = ap.function("main").body.items[0].expr
        assert isinstance(assign.target.ctype, PointerType)
        assert isinstance(assign.value.ctype, PointerType)

    def test_recursive_struct_allowed(self):
        ap = parse_and_analyze(
            "struct n { int v; struct n *next; }; int main() { return 0; }"
        )
        struct = next(iter(ap.symbols.globals.values()), None)
        # No globals; just confirm the struct resolved.
        assert ap.ast.structs[0].name == "n"
