"""Unit tests for the MiniC pretty-printer."""

from repro.frontend import parse, print_program
from repro.frontend.printer import declare, print_expr
from repro.frontend.types import ArrayType, PointerType, scalar


def body_line(source, needle):
    printed = print_program(parse(source))
    matching = [line.strip() for line in printed.splitlines() if needle in line]
    assert matching, printed
    return matching[0]


class TestDeclarations:
    def test_scalar(self):
        assert declare(scalar("int"), "x") == "int x"

    def test_pointer(self):
        assert declare(PointerType(scalar("int")), "p") == "int *p"

    def test_double_pointer(self):
        assert declare(PointerType(PointerType(scalar("char"))), "p") == "char **p"

    def test_array(self):
        assert declare(ArrayType(scalar("int"), 8), "a") == "int a[8]"

    def test_array_of_pointers(self):
        assert declare(ArrayType(PointerType(scalar("int")), 3), "a") == "int *a[3]"

    def test_struct_def_printed(self):
        printed = print_program(
            parse("struct node { int v; struct node *next; }; int main() { return 0; }")
        )
        assert "struct node {" in printed
        assert "struct node *next;" in printed


class TestExpressions:
    def test_arrow_chain(self):
        line = body_line(
            "struct n { struct n *next; }; struct n *p; "
            "int main() { p = p->next->next; return 0; }",
            "p =",
        )
        assert line == "p = p->next->next;"

    def test_parens_only_when_needed(self):
        line = body_line("int main() { x = a + b * c; return 0; }", "x =")
        assert line == "x = a + b * c;"

    def test_parens_preserved_for_grouping(self):
        line = body_line("int main() { x = (a + b) * c; return 0; }", "x =")
        assert line == "x = (a + b) * c;"

    def test_unary_and_address(self):
        line = body_line("int *p, v; int main() { *p = -v; return 0; }", "*p =")
        assert line == "*p = -v;"

    def test_call(self):
        line = body_line(
            "int f(int a, int *b); int main() { f(1, NULL); return 0; }", "f(1"
        )
        assert line == "f(1, NULL);"

    def test_string_literal_verbatim(self):
        source = 'char *s; int main() { s = "a\\"b"; return 0; }'
        printed = print_program(parse(source))
        assert '"a\\"b"' in printed
        # And the printed form reparses to the same literal.
        again = print_program(parse(printed))
        assert '"a\\"b"' in again


class TestStatements:
    def test_if_else(self):
        printed = print_program(
            parse("int main() { if (1) { } else { } return 0; }")
        )
        assert "if (1)" in printed and "else" in printed

    def test_for_loop(self):
        printed = print_program(
            parse("int main() { int i; for (i = 0; i < 3; i = i + 1) { } return 0; }")
        )
        assert "for (i = 0; i < 3; i = i + 1)" in printed

    def test_switch(self):
        printed = print_program(
            parse(
                "int main() { int x; switch (x) { case 1: break; default: break; } return 0; }"
            )
        )
        assert "switch (x) {" in printed
        assert "case 1:" in printed and "default:" in printed

    def test_goto_label(self):
        printed = print_program(
            parse("int main() { goto done; done: return 0; }")
        )
        assert "goto done;" in printed and "done:" in printed
