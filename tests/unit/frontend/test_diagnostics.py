"""Unit tests for source positions and diagnostics."""

import pytest

from repro.frontend.diagnostics import (
    DUMMY_SPAN,
    Diagnostic,
    DiagnosticSink,
    MiniCError,
    Position,
    Span,
)


class TestPosition:
    def test_advance_plain_text(self):
        pos = Position()
        after = pos.advanced("abc")
        assert after.column == 4
        assert after.offset == 3
        assert after.line == 1

    def test_advance_over_newlines(self):
        after = Position().advanced("ab\ncd\ne")
        assert after.line == 3
        assert after.column == 2

    def test_str(self):
        assert str(Position(4, 7)) == "4:7"


class TestSpan:
    def test_merge_orders_by_offset(self):
        early = Span(Position(1, 1, 0), Position(1, 4, 3), "f.c")
        late = Span(Position(2, 1, 10), Position(2, 3, 12), "f.c")
        merged = Span.merge(late, early)
        assert merged.start.offset == 0
        assert merged.end.offset == 12

    def test_str_includes_file(self):
        span = Span(Position(3, 2, 5), Position(3, 4, 7), "prog.c")
        assert str(span) == "prog.c:3:2"


class TestErrors:
    def test_error_message_carries_span(self):
        err = MiniCError("bad thing", Span(Position(5, 3, 0), Position(5, 4, 1), "x.c"))
        assert "x.c:5:3" in str(err)
        assert err.message == "bad thing"


class TestSink:
    def test_collects_in_order(self):
        sink = DiagnosticSink()
        sink.warn("first")
        sink.note("second")
        assert len(sink) == 2
        assert [d.severity for d in sink] == ["warning", "note"]

    def test_warnings_filter(self):
        sink = DiagnosticSink()
        sink.warn("w")
        sink.note("n")
        assert len(sink.warnings) == 1

    def test_diagnostic_str(self):
        diag = Diagnostic("warning", "odd", DUMMY_SPAN)
        assert "warning: odd" in str(diag)
