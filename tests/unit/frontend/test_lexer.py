"""Unit tests for the MiniC lexer."""

import pytest

from repro.frontend import LexError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("hello")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "hello"

    def test_identifier_with_underscore_and_digits(self):
        assert texts("_foo42 bar_baz") == ["_foo42", "bar_baz"]

    def test_keywords_distinguished_from_identifiers(self):
        tokens = tokenize("int intx")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENT

    def test_all_control_keywords(self):
        for word in ("if", "else", "while", "for", "return", "break", "continue",
                     "goto", "switch", "case", "default", "do", "struct"):
            assert tokenize(word)[0].kind is TokenKind.KEYWORD, word

    def test_null_is_keyword(self):
        assert tokenize("NULL")[0].kind is TokenKind.KEYWORD


class TestNumbers:
    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.text == "42"

    def test_integer_with_suffix(self):
        assert tokenize("42L")[0].kind is TokenKind.INT_LIT
        assert tokenize("7u")[0].kind is TokenKind.INT_LIT

    def test_float_literal(self):
        assert tokenize("3.25")[0].kind is TokenKind.FLOAT_LIT

    def test_float_with_exponent(self):
        assert tokenize("1e9")[0].kind is TokenKind.FLOAT_LIT
        assert tokenize("2.5e-3")[0].kind is TokenKind.FLOAT_LIT

    def test_member_access_is_not_float(self):
        # `x.f` must lex as IDENT PUNCT IDENT.
        toks = tokenize("x.f")
        assert [t.kind for t in toks[:3]] == [
            TokenKind.IDENT,
            TokenKind.PUNCT,
            TokenKind.IDENT,
        ]


class TestStringsAndChars:
    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind is TokenKind.STRING_LIT

    def test_string_with_escape(self):
        tok = tokenize(r'"a\"b"')[0]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.text == r'"a\"b"'

    def test_char_literal(self):
        assert tokenize("'a'")[0].kind is TokenKind.CHAR_LIT

    def test_escaped_char_literal(self):
        assert tokenize(r"'\n'")[0].kind is TokenKind.CHAR_LIT

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unterminated_char_raises(self):
        with pytest.raises(LexError):
            tokenize("'x")


class TestPunctuation:
    def test_arrow_lexes_as_one_token(self):
        assert texts("p->next") == ["p", "->", "next"]

    def test_longest_match_shift_assign(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]

    def test_increment_vs_plus(self):
        assert texts("a++ + b") == ["a", "++", "+", "b"]

    def test_comparison_operators(self):
        assert texts("a <= b >= c == d != e") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e",
        ]

    def test_logical_operators(self):
        assert texts("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a ` b")


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_preprocessor_line_skipped(self):
        assert texts("#include <stdio.h>\nint x;") == ["int", "x", ";"]


class TestSpans:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].span.start.line == 1
        assert tokens[1].span.start.line == 2
        assert tokens[1].span.start.column == 3

    def test_offsets_monotonic(self):
        tokens = tokenize("int x = 1;")
        offsets = [t.span.start.offset for t in tokens]
        assert offsets == sorted(offsets)
