"""Unit tests for the guarded pointer-shuffle builder.

The shuffle is the soundness-critical piece of lenient lowering and
stub synthesis: every emitted assignment must be ``rand()``-guarded
(an unguarded one would *kill* existing aliases, turning an
over-approximation into an under-approximation).
"""

from repro.frontend import ast_nodes as ast
from repro.frontend.havoc import (
    compatible,
    fresh_cell,
    reachable_pointers,
    shuffle,
)
from repro.frontend.types import INT, VOID, PointerType, StructType


def node_struct():
    s = StructType("node")
    s.fields = [("value", INT), ("next", PointerType(s))]
    return s


class TestCompatible:
    def test_equal_pointers(self):
        assert compatible(PointerType(INT), PointerType(INT))

    def test_void_bridges(self):
        assert compatible(PointerType(VOID), PointerType(INT))
        assert compatible(PointerType(INT), PointerType(VOID))

    def test_distinct_pointees_incompatible(self):
        assert not compatible(PointerType(INT), PointerType(node_struct()))

    def test_scalar_never_compatible_with_pointer(self):
        assert not compatible(INT, PointerType(INT))


class TestReachable:
    def test_direct_pointer_is_source_not_sink(self):
        sinks, sources = reachable_pointers("p", PointerType(INT))
        assert [str(t) for _, t in sources] == ["int*"]
        assert sinks == []

    def test_pointer_to_pointer_yields_deref_sink(self):
        sinks, sources = reachable_pointers("pp", PointerType(PointerType(INT)))
        sink_texts = {ast_text(e) for e, _ in sinks}
        assert "(*pp)" in sink_texts or "*pp" in sink_texts
        assert len(sources) == 2  # pp and *pp

    def test_struct_pointer_fields_reachable(self):
        sinks, sources = reachable_pointers("n", PointerType(node_struct()))
        sink_texts = {ast_text(e) for e, _ in sinks}
        assert any("next" in t for t in sink_texts)
        # Depth 2: n, n->next, n->next->next as sources.
        assert len(sources) == 3


def ast_text(expr):
    from repro.frontend.printer import print_expr

    return print_expr(expr)


class TestShuffle:
    def test_every_statement_is_guarded(self):
        result = shuffle([("n", PointerType(node_struct()))])
        assert result.statements, "expected a non-empty fan"
        for stmt in result.statements:
            assert isinstance(stmt, ast.If)
            assert isinstance(stmt.cond, ast.Call)
            assert stmt.cond.callee == "rand"
            assert stmt.otherwise is None

    def test_include_direct_adds_variable_sink(self):
        with_direct = shuffle([("p", PointerType(INT)), ("q", PointerType(INT))])
        without = shuffle(
            [("p", PointerType(INT)), ("q", PointerType(INT))],
            include_direct=False,
        )
        assert "p" in with_direct.sinks and "q" in with_direct.sinks
        assert without.sinks == []
        assert without.statements == []

    def test_incompatible_sources_not_assigned(self):
        result = shuffle(
            [("p", PointerType(PointerType(INT))), ("n", PointerType(node_struct()))]
        )
        for stmt in result.statements:
            assign = stmt.then.expr if isinstance(stmt.then, ast.ExprStmt) else None
            assert assign is not None
            # No int** <- node* or similar cross-type flows.
            assert ast_text(assign.target) != ast_text(assign.value)

    def test_cap_truncates_and_reports(self):
        variables = [(f"p{i}", PointerType(INT)) for i in range(12)]
        result = shuffle(variables, cap=5)
        assert len(result.statements) == 5
        assert result.truncated > 0

    def test_fresh_arm_uses_allocator(self):
        result = shuffle([("p", PointerType(INT)), ("q", PointerType(INT))])
        allocs = [
            stmt
            for stmt in result.statements
            if isinstance(stmt.then, ast.ExprStmt)
            and isinstance(stmt.then.expr.value, ast.Call)
            and stmt.then.expr.value.callee == "malloc"
        ]
        assert allocs, "expected a guarded fresh-cell arm per sink"

    def test_fresh_cell_is_malloc_call(self):
        cell = fresh_cell()
        assert isinstance(cell, ast.Call) and cell.callee == "malloc"
