"""Exact bounded oracle: completeness on tiny programs, agreement
with the dynamic oracle, and containment in the static solution."""

import pytest

from repro.core import analyze_program
from repro.frontend import parse_and_analyze
from repro.icfg.builder import IcfgBuilder
from repro.interp.recorder import SoundnessChecker
from repro.oracle import ExactEnumerator, collect_dynamic_oracle, exact_alias_oracle
from repro.programs.fixtures import FIGURE1


def _build(source):
    analyzed = parse_and_analyze(source)
    builder = IcfgBuilder(analyzed)
    return analyzed, builder, builder.build()


class TestEnumeration:
    def test_figure1_completes(self):
        analyzed, _, icfg = _build(FIGURE1)
        oracle = ExactEnumerator(analyzed, icfg).run()
        assert oracle.complete
        assert oracle.incomplete_reason == ""
        assert oracle.states_explored > 0
        assert oracle.total_pairs > 0

    def test_max_states_bound_reported(self):
        analyzed, _, icfg = _build(FIGURE1)
        oracle = ExactEnumerator(analyzed, icfg, max_states=3).run()
        assert not oracle.complete
        assert oracle.incomplete_reason == "max_states"

    def test_recursion_depth_bound_reported(self):
        source = """
        int *g;
        int f(int n) { if (n > 0) { f(n - 1); } return 0; }
        int main() { f(100); return 0; }
        """
        analyzed, _, icfg = _build(source)
        oracle = ExactEnumerator(analyzed, icfg, max_call_depth=4).run()
        assert not oracle.complete
        assert oracle.incomplete_reason == "max_call_depth"

    def test_branches_both_explored(self):
        # No input scripting needed: the enumerator forks on every
        # predicate, so both &-targets show up.
        source = """
        int sel;
        int a; int b; int *p;
        int main() {
            if (sel) { p = &a; } else { p = &b; }
            return 0;
        }
        """
        analyzed, _, icfg = _build(source)
        oracle = ExactEnumerator(analyzed, icfg).run()
        assert oracle.complete
        strings = {
            str(pair)
            for pairs in oracle.pairs_by_node.values()
            for pair in pairs
        }
        assert "(a, *p)" in strings
        assert "(b, *p)" in strings


class TestLattice:
    def test_dynamic_contained_in_exact_on_figure1(self):
        analyzed, builder, icfg = _build(FIGURE1)
        exact = ExactEnumerator(analyzed, icfg, max_derefs=4).run()
        assert exact.complete
        dynamic = collect_dynamic_oracle(
            analyzed, builder, icfg, draws=6, max_derefs=4
        )
        for nid, pairs in dynamic.pairs_by_node.items():
            missing = pairs - exact.pairs_by_node.get(nid, set())
            assert not missing, (nid, [str(p) for p in missing])

    @pytest.mark.parametrize("k", [2, 3])
    def test_exact_contained_in_solution(self, k):
        analyzed, _, icfg = _build(FIGURE1)
        solution = analyze_program(analyzed, icfg, k=k)
        oracle = ExactEnumerator(analyzed, icfg, max_derefs=k + 1).run()
        checker = SoundnessChecker(solution)
        for nid in sorted(oracle.pairs_by_node):
            checker.check_observed(
                oracle.node_by_nid[nid], oracle.pairs_by_node[nid]
            )
        assert checker.report.ok, [
            str(v) for v in checker.report.violations[:5]
        ]

    def test_wrapper_matches_enumerator(self):
        analyzed, _, icfg = _build(FIGURE1)
        via_wrapper = exact_alias_oracle(analyzed, icfg)
        direct = ExactEnumerator(analyzed, icfg).run()
        assert via_wrapper.pairs_by_node == direct.pairs_by_node
