"""Dynamic alias oracle: collection, determinism, and containment in
the static solution on the known fixtures."""

import pytest

from repro.core import analyze_program
from repro.frontend import parse_and_analyze
from repro.icfg.builder import IcfgBuilder
from repro.oracle import (
    check_dynamic_oracle,
    collect_dynamic_oracle,
    dynamic_alias_oracle,
    scriptable_scalar_globals,
)
from repro.programs.fixtures import FIGURE1


def _collect(source, draws=6, seed=0, **kwargs):
    analyzed = parse_and_analyze(source)
    builder = IcfgBuilder(analyzed)
    icfg = builder.build()
    oracle = collect_dynamic_oracle(
        analyzed, builder, icfg, draws=draws, seed=seed, **kwargs
    )
    return analyzed, icfg, oracle


class TestCollection:
    def test_figure1_witnesses_pairs(self):
        _, _, oracle = _collect(FIGURE1)
        assert oracle.draws == 6
        assert oracle.total_pairs > 0
        assert oracle.observations > 0
        # The recursive fixture exercises entry/exit and call/return.
        assert len(oracle.node_by_nid) > 0

    def test_same_seed_is_deterministic(self):
        _, _, a = _collect(FIGURE1, seed=7)
        _, _, b = _collect(FIGURE1, seed=7)
        assert a.pairs_by_node == b.pairs_by_node
        assert a.stats_dict() == b.stats_dict()

    def test_scalar_globals_steer_draws(self):
        # A scalar global selecting between two &-targets: pooled over
        # enough draws, both branches' aliases must be witnessed.
        source = """
        int sel;
        int a; int b; int *p;
        int main() {
            if (sel > 2) { p = &a; } else { p = &b; }
            return 0;
        }
        """
        # sel draws uniformly from [-3, 9), so both branches are taken
        # with near-certainty over 12 draws.
        _, _, oracle = _collect(source, draws=12)
        strings = {
            str(pair)
            for pairs in oracle.pairs_by_node.values()
            for pair in pairs
        }
        assert "(a, *p)" in strings
        assert "(b, *p)" in strings

    def test_scriptable_scalar_globals_excludes_pointers(self):
        analyzed = parse_and_analyze(
            "int s; int *p; struct node { int v; struct node *n; };"
            "struct node g; int main() { return 0; }"
        )
        assert scriptable_scalar_globals(analyzed) == ["s"]

    def test_stats_dict_shape(self):
        _, _, oracle = _collect(FIGURE1, draws=2)
        stats = oracle.stats_dict()
        assert stats["draws"] == 2
        assert set(stats) >= {
            "observations",
            "distinct_node_pairs",
            "nodes_observed",
            "runs_trapped",
            "runs_out_of_fuel",
        }


class TestContainment:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_figure1_oracle_contained_in_solution(self, k):
        analyzed, icfg, oracle = _collect(FIGURE1, max_derefs=k + 1)
        solution = analyze_program(analyzed, icfg, k=k)
        report = check_dynamic_oracle(oracle, solution)
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.checked_pairs > 0

    def test_convenience_wrapper(self):
        oracle, report = dynamic_alias_oracle(FIGURE1, k=2, draws=4)
        assert oracle.total_pairs > 0
        assert report.ok

    @pytest.fixture
    def unsound_solution(self, monkeypatch):
        """FIGURE1 analyzed with Figure 2's alias introduction disabled
        — an engine that silently misses assignment-created aliases.
        ``RhsView.intro_target`` feeds both engines, so the sabotage
        holds whichever engine ``analyze_program`` selects."""
        from repro.core.transfer import RhsView

        monkeypatch.setattr(RhsView, "intro_target", lambda self, lhs: None)
        analyzed, icfg, oracle = _collect(FIGURE1)
        return oracle, analyze_program(analyzed, icfg, k=2)

    def test_violation_reported_against_unsound_engine(self, unsound_solution):
        # Sanity: the check is not vacuous — a broken transfer function
        # must be flagged.
        oracle, solution = unsound_solution
        report = check_dynamic_oracle(oracle, solution)
        assert not report.ok

    def test_max_violations_truncates_scan(self, unsound_solution):
        oracle, solution = unsound_solution
        full = check_dynamic_oracle(oracle, solution)
        assert len(full.violations) > 1
        report = check_dynamic_oracle(oracle, solution, max_violations=1)
        assert 1 <= len(report.violations) <= len(full.violations)
