"""Unit tests for AST → ICFG lowering."""

import pytest

from repro.frontend import UnsupportedFeatureError, parse_and_analyze
from repro.icfg import (
    AddrOf,
    IcfgBuilder,
    NameRef,
    NodeKind,
    Opaque,
    PtrAssign,
    build_icfg,
    to_dot,
)


def icfg_of(source):
    return build_icfg(parse_and_analyze(source))


def assigns(icfg, proc=None):
    return [
        n.stmt
        for n in icfg.nodes
        if n.is_pointer_assignment and (proc is None or n.proc == proc)
    ]


class TestStructure:
    def test_entry_exit_per_proc(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        for proc in icfg.procs.values():
            assert proc.entry.kind is NodeKind.ENTRY
            assert proc.exit.kind is NodeKind.EXIT

    def test_no_direct_call_to_return_edge(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        for node in icfg.nodes:
            if node.kind is NodeKind.CALL:
                assert node.paired_return not in node.succs

    def test_call_linked_to_entry_and_exit_to_return(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        call = next(n for n in icfg.nodes if n.kind is NodeKind.CALL)
        assert icfg.entry_of("f") in call.succs
        assert call.paired_return in icfg.exit_of("f").succs

    def test_if_has_two_successor_paths(self):
        icfg = icfg_of(
            "int *p, a, b; int main() { if (a) { p = &a; } else { p = &b; } return 0; }"
        )
        pred = next(n for n in icfg.nodes if n.kind is NodeKind.PREDICATE)
        assert len(pred.succs) == 2

    def test_while_loops_back(self):
        icfg = icfg_of("int main() { int i; while (i < 3) { i = i + 1; } return 0; }")
        header = next(
            n for n in icfg.nodes if n.kind is NodeKind.OTHER and "loop" in n.label()
        )
        # Some node downstream of the header returns to it.
        assert any(header in n.succs for n in icfg.nodes if n is not header)

    def test_validate_passes(self):
        icfg = icfg_of("int main() { return 0; }")
        icfg.validate()

    def test_reachable_procs(self):
        icfg = icfg_of(
            """
            void a(void) { }
            void b(void) { a(); }
            void unused(void) { }
            int main() { b(); return 0; }
            """
        )
        assert icfg.reachable_procs() == {"main", "b", "a"}

    def test_dot_export_mentions_every_node(self):
        icfg = icfg_of("int main() { return 0; }")
        dot = to_dot(icfg)
        for node in icfg.nodes:
            assert f"n{node.nid}" in dot


class TestNormalization:
    def test_simple_pointer_assign(self):
        icfg = icfg_of("int *p, v; int main() { p = &v; return 0; }")
        stmts = assigns(icfg)
        assert len(stmts) == 1
        assert isinstance(stmts[0].rhs, AddrOf)

    def test_scalar_assign_is_other(self):
        icfg = icfg_of("int x; int main() { x = 3; return 0; }")
        assert assigns(icfg) == []

    def test_malloc_is_opaque(self):
        icfg = icfg_of("int *p; int main() { p = malloc(4); return 0; }")
        (stmt,) = assigns(icfg)
        assert isinstance(stmt.rhs, Opaque)

    def test_call_result_copied_through_ret_slot(self):
        icfg = icfg_of(
            """
            int *f(void) { return NULL; }
            int *p;
            int main() { p = f(); return 0; }
            """
        )
        stmts = assigns(icfg, "main")
        # $t = f$ret, then p = $t.
        rhs_names = [str(s.rhs) for s in stmts]
        assert any("f$ret" in r for r in rhs_names)
        lhs_names = [str(s.lhs) for s in stmts]
        assert "p" in lhs_names

    def test_return_lowered_to_ret_slot_assign(self):
        icfg = icfg_of("int *f(int *q) { return q; } int main() { return 0; }")
        stmts = assigns(icfg, "f")
        assert any(str(s.lhs) == "f$ret" for s in stmts)

    def test_struct_assign_expands_pointer_fields(self):
        icfg = icfg_of(
            """
            struct pair { int *a; int *b; int n; };
            struct pair p1, p2;
            int main() { p1 = p2; return 0; }
            """
        )
        stmts = assigns(icfg)
        lhs = {str(s.lhs) for s in stmts}
        assert lhs == {"p1.a", "p1.b"}

    def test_array_index_assignment_is_weak(self):
        icfg = icfg_of("int *a[3], v; int main() { a[0] = &v; return 0; }")
        (stmt,) = assigns(icfg)
        assert stmt.weak
        assert str(stmt.lhs) == "a"

    def test_pointer_index_is_weak_deref(self):
        icfg = icfg_of("int **pp, *v; int main() { pp[2] = v; return 0; }")
        (stmt,) = assigns(icfg)
        assert stmt.weak
        assert str(stmt.lhs) == "*pp"

    def test_conditional_rhs_lowered_to_diamond(self):
        icfg = icfg_of(
            "int *p, a, b, c; int main() { p = c ? &a : &b; return 0; }"
        )
        stmts = assigns(icfg)
        # Two temp assignments plus the final copy.
        assert len(stmts) == 3

    def test_chained_assignment(self):
        icfg = icfg_of("int *p, *q, v; int main() { p = q = &v; return 0; }")
        stmts = assigns(icfg)
        lhs = [str(s.lhs) for s in stmts]
        assert lhs == ["q", "p"]

    def test_global_initializer_lowered_into_main(self):
        icfg = icfg_of("int v; int *p = &v; int main() { return 0; }")
        stmts = assigns(icfg, "main")
        assert any(str(s.lhs) == "p" for s in stmts)

    def test_string_literal_gets_synthetic_global(self):
        analyzed = parse_and_analyze(
            'char *s; int main() { s = "hi"; return 0; }'
        )
        builder = IcfgBuilder(analyzed)
        icfg = builder.build()
        (stmt,) = assigns(icfg)
        assert isinstance(stmt.rhs, AddrOf)
        assert stmt.rhs.name.base.startswith("$str")

    def test_pointer_arith_keeps_aggregate(self):
        icfg = icfg_of("int *p, *q; int main() { p = q + 1; return 0; }")
        (stmt,) = assigns(icfg)
        assert isinstance(stmt.rhs, NameRef)
        assert str(stmt.rhs.name) == "q"

    def test_undefined_pointer_function_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            icfg_of("int *f(int *p); int main() { f(NULL); return 0; }")

    def test_stmt_end_markers_recorded(self):
        analyzed = parse_and_analyze("int *p, v; int main() { p = &v; return 0; }")
        builder = IcfgBuilder(analyzed)
        builder.build()
        markers = [n for n in builder.stmt_end_nodes.values() if n is not None]
        assert any(
            n.is_pointer_assignment and str(n.stmt.lhs) == "p" for n in markers
        )


class TestControlFlowLowering:
    def kinds(self, source, proc="main"):
        icfg = icfg_of(source)
        return [n.kind for n in icfg.procs[proc].nodes]

    def test_break_exits_loop(self):
        icfg = icfg_of(
            "int main() { int i; while (1) { if (i) { break; } } return 0; }"
        )
        icfg.validate()  # structure is consistent

    def test_continue_returns_to_header(self):
        icfg = icfg_of(
            "int main() { int i; for (i = 0; i < 3; i = i + 1) { continue; } return 0; }"
        )
        icfg.validate()

    def test_goto_label(self):
        icfg = icfg_of(
            "int main() { int i; again: i = i + 1; if (i < 3) { goto again; } return 0; }"
        )
        icfg.validate()
        label = next(
            n for n in icfg.nodes if n.kind is NodeKind.OTHER and "label" in n.label()
        )
        assert len(label.preds) >= 2  # fallthrough + goto

    def test_switch_cases_branch_from_predicate(self):
        icfg = icfg_of(
            """
            int main() {
                int x;
                switch (x) { case 1: x = 2; break; default: x = 3; }
                return 0;
            }
            """
        )
        pred = next(n for n in icfg.nodes if n.kind is NodeKind.PREDICATE)
        assert len(pred.succs) == 2

    def test_do_while_executes_body_first(self):
        icfg = icfg_of("int main() { int i; do { i = 1; } while (0); return 0; }")
        icfg.validate()

    def test_dead_code_after_return_allowed(self):
        icfg = icfg_of("int *p, v; int main() { return 0; p = &v; }")
        icfg.validate()
