"""Unit tests for the normalized IR value types."""

from repro.icfg import AddrOf, CallInfo, NameRef, NodeKind, Opaque, OtherStmt, PtrAssign
from repro.icfg.ir import Node
from repro.names import ObjectName


P = ObjectName("p")
Q = ObjectName("q")


class TestOperands:
    def test_name_ref_str(self):
        assert str(NameRef(P.deref())) == "*p"

    def test_addr_of_str(self):
        assert str(AddrOf(Q)) == "&q"

    def test_opaque_str(self):
        assert str(Opaque("malloc")) == "malloc"

    def test_operands_hashable(self):
        assert NameRef(P) == NameRef(P)
        assert AddrOf(P) != NameRef(P)
        {NameRef(P), AddrOf(P), Opaque()}


class TestStatements:
    def test_ptr_assign_str(self):
        stmt = PtrAssign(P, NameRef(Q))
        assert str(stmt) == "p = q"

    def test_weak_marker(self):
        stmt = PtrAssign(P, NameRef(Q), weak=True)
        assert "(weak)" in str(stmt)

    def test_call_info_str(self):
        call = CallInfo("f", (NameRef(P), Opaque("scalar")))
        assert str(call) == "call f(p, scalar)"

    def test_other_access_sets(self):
        stmt = OtherStmt("scalar-assign", writes=(P,), reads=(Q,))
        assert stmt.writes == (P,)
        assert stmt.reads == (Q,)


class TestNode:
    def test_identity_semantics(self):
        a = Node(0, NodeKind.OTHER, "main")
        b = Node(0, NodeKind.OTHER, "main")
        assert a != b  # identity, not value
        assert hash(a) == 0

    def test_labels(self):
        entry = Node(1, NodeKind.ENTRY, "f")
        assert entry.label() == "entry_f"
        assign = Node(2, NodeKind.ASSIGN, "f", PtrAssign(P, AddrOf(Q)))
        assert assign.label() == "p = &q"
        assert assign.is_pointer_assignment

    def test_add_succ_links_both_directions(self):
        a = Node(0, NodeKind.OTHER, "main")
        b = Node(1, NodeKind.OTHER, "main")
        a.add_succ(b)
        assert b in a.succs and a in b.preds
