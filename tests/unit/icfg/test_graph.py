"""Unit tests for the ICFG graph structure and utilities."""

import pytest

from repro.frontend import parse_and_analyze
from repro.icfg import ICFG, NodeKind, build_icfg, to_dot
from repro.icfg.graph import ProcGraph


def icfg_of(source):
    return build_icfg(parse_and_analyze(source))


class TestGraphBasics:
    def test_node_ids_dense_and_ordered(self):
        icfg = icfg_of("int main() { return 0; }")
        assert [n.nid for n in icfg.nodes] == list(range(len(icfg)))

    def test_node_lookup(self):
        icfg = icfg_of("int main() { return 0; }")
        for node in icfg.nodes:
            assert icfg.node(node.nid) is node

    def test_add_succ_idempotent(self):
        icfg = ICFG()
        a = icfg.new_node(NodeKind.OTHER, "p")
        b = icfg.new_node(NodeKind.OTHER, "p")
        a.add_succ(b)
        a.add_succ(b)
        assert a.succs == [b]
        assert b.preds == [a]

    def test_entry_exit_accessors(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        assert icfg.entry_of("f").kind is NodeKind.ENTRY
        assert icfg.exit_of("f").kind is NodeKind.EXIT
        assert icfg.main.name == "main"

    def test_call_sites_iterates(self):
        icfg = icfg_of(
            "void f(void) { } int main() { f(); f(); return 0; }"
        )
        assert len(list(icfg.call_sites("f"))) == 2
        assert list(icfg.call_sites("missing")) == []

    def test_pointer_assignments_iterates(self):
        icfg = icfg_of("int *p, v; int main() { p = &v; v = 2; return 0; }")
        assert len(list(icfg.pointer_assignments())) == 1

    def test_proc_nodes_partition(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        all_ids = {n.nid for n in icfg.nodes}
        partitioned = set()
        for proc in icfg.procs.values():
            ids = {n.nid for n in proc.nodes}
            assert not (ids & partitioned)
            partitioned |= ids
        assert partitioned == all_ids

    def test_labels_are_strings(self):
        icfg = icfg_of(
            "int *p, v; void f(void) { } int main() { p = &v; f(); return 0; }"
        )
        for node in icfg.nodes:
            assert isinstance(node.label(), str) and node.label()

    def test_repr_mentions_id(self):
        icfg = icfg_of("int main() { return 0; }")
        assert f"n{icfg.nodes[0].nid}" in repr(icfg.nodes[0])


class TestDot:
    def test_clusters_per_proc(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        dot = to_dot(icfg)
        assert "cluster_f" in dot and "cluster_main" in dot

    def test_interprocedural_edges_dashed(self):
        icfg = icfg_of("void f(void) { } int main() { f(); return 0; }")
        dot = to_dot(icfg)
        assert "style=dashed" in dot

    def test_quotes_escaped(self):
        icfg = icfg_of('char *s; int main() { s = "x"; return 0; }')
        to_dot(icfg)  # must not raise


class TestValidation:
    def test_broken_edge_detected(self):
        icfg = icfg_of("int main() { return 0; }")
        a, b = icfg.nodes[0], icfg.nodes[1]
        a.succs.append(b)  # bypass add_succ: no back edge
        if a in b.preds:
            b.preds.remove(a)
        with pytest.raises(AssertionError):
            icfg.validate()
