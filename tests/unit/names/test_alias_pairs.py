"""Unit tests for AliasPair beyond the hypothesis laws."""

import pytest

from repro.names import AliasPair, ObjectName, make_pair, nonvisible


A = ObjectName("a")
B = ObjectName("b")
STAR_A = A.deref()


class TestCanonicalization:
    def test_order_invariant(self):
        assert AliasPair(A, B) == AliasPair(B, A)
        assert AliasPair(A, B).first == AliasPair(B, A).first

    def test_str_stable(self):
        assert str(AliasPair(B, A)) == str(AliasPair(A, B))

    def test_trivial_detection(self):
        assert AliasPair(A, A).is_trivial
        assert not AliasPair(A, B).is_trivial


class TestMembership:
    def test_other(self):
        pair = AliasPair(A, B)
        assert pair.other(A) == B
        assert pair.other(B) == A

    def test_other_non_member_raises(self):
        with pytest.raises(ValueError):
            AliasPair(A, B).other(STAR_A)

    def test_involves(self):
        pair = AliasPair(A, B)
        assert pair.involves(A) and pair.involves(B)
        assert not pair.involves(STAR_A)

    def test_involves_base(self):
        pair = AliasPair(STAR_A, B)
        assert pair.involves_base("a")
        assert pair.involves_base("b")
        assert not pair.involves_base("c")

    def test_iteration(self):
        assert set(AliasPair(A, B)) == {A, B}


class TestNonvisible:
    def test_detection(self):
        pair = AliasPair(A, nonvisible(1))
        assert pair.has_nonvisible
        assert pair.nonvisible_member() == nonvisible(1)
        assert pair.visible_member() == A

    def test_plain_pair(self):
        pair = AliasPair(A, B)
        assert not pair.has_nonvisible
        assert pair.nonvisible_member() is None

    def test_both_nonvisible(self):
        pair = AliasPair(nonvisible(1), nonvisible(2))
        assert pair.has_nonvisible
        assert pair.visible_member() is None


class TestTransforms:
    def test_map(self):
        pair = AliasPair(A, B)
        mapped = pair.map(lambda n: n.deref())
        assert mapped == AliasPair(A.deref(), B.deref())

    def test_k_limited(self):
        deep = A.extend(("*",) * 5)
        pair = AliasPair(deep, B)
        limited = pair.k_limited(2)
        assert limited.first.num_derefs <= 2 or limited.second.num_derefs <= 2

    def test_make_pair_limits(self):
        deep = A.extend(("*",) * 5)
        pair = make_pair(deep, B, 2)
        for member in pair:
            assert member.num_derefs <= 2


class TestInterning:
    """Alias pairs are hash-consed after canonicalization: both member
    orders produce the same object."""

    def test_equal_pairs_are_identical(self):
        assert AliasPair(A, B) is AliasPair(A, B)

    def test_member_order_interns_to_same_object(self):
        assert AliasPair(A, B) is AliasPair(B, A)

    def test_distinct_pairs_are_distinct(self):
        assert AliasPair(A, B) is not AliasPair(A, STAR_A)

    def test_pairs_are_immutable(self):
        pair = AliasPair(A, B)
        with pytest.raises(AttributeError):
            pair.first = B

    def test_pickle_reinterns(self):
        import pickle

        pair = AliasPair(STAR_A, B)
        clone = pickle.loads(pickle.dumps(pair))
        assert clone is pair

    def test_intern_count_monotonic(self):
        from repro.names.alias_pairs import interned_pair_count

        fresh = ObjectName("fresh-pair-intern-member")
        before = interned_pair_count()
        AliasPair(fresh, B)
        assert interned_pair_count() == before + 1
        AliasPair(B, fresh)
        assert interned_pair_count() == before + 1
