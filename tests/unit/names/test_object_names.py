"""Unit tests for object names and k-limiting (paper §3)."""

import pytest

from repro.names import (
    DEREF,
    ObjectName,
    apply_trans,
    k_limit,
    nonvisible,
    renumber_nonvisible,
)


class TestConstruction:
    def test_variable(self):
        p = ObjectName("p")
        assert p.base == "p"
        assert p.is_variable
        assert p.num_derefs == 0

    def test_deref(self):
        p = ObjectName("p").deref()
        assert p.selectors == (DEREF,)
        assert p.num_derefs == 1

    def test_field(self):
        name = ObjectName("s").field("f")
        assert name.selectors == ("f",)
        assert name.num_derefs == 0

    def test_arrow_is_deref_then_field(self):
        name = ObjectName("p").deref().field("next")
        assert name.selectors == (DEREF, "next")

    def test_extend(self):
        name = ObjectName("p").extend((DEREF, "next", DEREF))
        assert name.num_derefs == 2

    def test_extending_truncated_name_is_identity(self):
        name = ObjectName("p", (DEREF,), truncated=True)
        assert name.deref() is name
        assert name.field("f") is name


class TestRendering:
    def test_simple_variable(self):
        assert str(ObjectName("v")) == "v"

    def test_deref_renders_star(self):
        assert str(ObjectName("q").deref().deref()) == "**q"

    def test_arrow_renders(self):
        assert str(ObjectName("p").deref().field("next")) == "p->next"

    def test_dot_renders(self):
        assert str(ObjectName("s").field("f")) == "s.f"

    def test_truncation_marker(self):
        assert str(ObjectName("p", (DEREF,), truncated=True)).endswith("~")


class TestPrefix:
    def test_is_prefix_reflexive(self):
        name = ObjectName("p").deref()
        assert name.is_prefix(name)

    def test_is_prefix_positive(self):
        p = ObjectName("p")
        assert p.is_prefix(p.deref().field("n"))

    def test_is_prefix_different_base(self):
        assert not ObjectName("p").is_prefix(ObjectName("q").deref())

    def test_is_prefix_not_symmetric(self):
        p = ObjectName("p")
        pn = p.deref().field("n")
        assert not pn.is_prefix(p)

    def test_is_prefix_with_deref_requires_deref(self):
        s = ObjectName("s")
        assert not s.is_prefix(ObjectName("s")) or not s.is_prefix_with_deref(s)
        assert not s.is_prefix_with_deref(s.field("f"))
        assert s.is_prefix_with_deref(s.field("f").deref())
        assert s.is_prefix_with_deref(s.deref())

    def test_suffix_after(self):
        p = ObjectName("p")
        pnd = p.deref().field("n").deref()
        assert pnd.suffix_after(p) == (DEREF, "n", DEREF)

    def test_suffix_after_non_prefix_raises(self):
        with pytest.raises(ValueError):
            ObjectName("p").suffix_after(ObjectName("q"))


class TestApplyTrans:
    def test_paper_example(self):
        # apply_trans(p->n, p->n->d, r) returns r->d.
        p = ObjectName("p")
        pn = p.deref().field("n")
        pnd = pn.deref().field("d")
        r = ObjectName("r")
        assert str(apply_trans(pn, pnd, r)) == "r->d"

    def test_identity_when_equal(self):
        name = ObjectName("p").deref()
        assert apply_trans(name, name, ObjectName("z")) == ObjectName("z")


class TestKLimit:
    def test_under_limit_unchanged(self):
        name = ObjectName("p").deref().field("f")
        assert k_limit(name, 1) == name
        assert not k_limit(name, 1).truncated

    def test_paper_example_k1(self):
        # For k = 1, p->f1->f2 is represented by p->f1 (not *p).
        name = ObjectName("p").extend((DEREF, "f1", DEREF, "f2"))
        limited = k_limit(name, 1)
        assert limited.selectors == (DEREF, "f1")
        assert limited.truncated

    def test_exact_limit_not_truncated(self):
        name = ObjectName("p").extend((DEREF, "f1"))
        assert not k_limit(name, 1).truncated

    def test_truncation_drops_trailing_fields(self):
        name = ObjectName("p").extend((DEREF, DEREF, "f"))
        limited = k_limit(name, 1)
        assert limited.selectors == (DEREF,)

    def test_idempotent(self):
        name = ObjectName("p").extend((DEREF,) * 5)
        once = k_limit(name, 2)
        assert k_limit(once, 2) == once

    def test_k_zero_rejected_names_with_derefs(self):
        name = ObjectName("p").deref()
        limited = k_limit(name, 0)
        assert limited.selectors == ()
        assert limited.truncated


class TestNonvisible:
    def test_tokens_distinct(self):
        assert nonvisible(1) != nonvisible(2)

    def test_is_nonvisible(self):
        assert nonvisible(1).is_nonvisible
        assert not ObjectName("x").is_nonvisible

    def test_renumber(self):
        name = nonvisible(1).deref()
        renamed = renumber_nonvisible(name, 2)
        assert renamed.base == nonvisible(2).base
        assert renamed.selectors == name.selectors

    def test_renumber_leaves_ordinary_names(self):
        name = ObjectName("x").deref()
        assert renumber_nonvisible(name, 2) == name


class TestInterning:
    """Object names are hash-consed: equal construction arguments yield
    the *same* object, so the engine's hot dict/set operations compare
    by identity."""

    def test_equal_names_are_identical(self):
        assert ObjectName("p") is ObjectName("p")
        assert ObjectName("p").deref() is ObjectName("p").deref()
        assert ObjectName("s").field("f") is ObjectName("s").field("f")

    def test_distinct_names_are_distinct(self):
        assert ObjectName("p") is not ObjectName("q")
        assert ObjectName("p") is not ObjectName("p").deref()

    def test_truncation_flag_distinguishes(self):
        plain = ObjectName("p", (DEREF,))
        truncated = ObjectName("p", (DEREF,), truncated=True)
        assert plain is not truncated
        assert plain != truncated

    def test_names_are_immutable(self):
        name = ObjectName("p")
        with pytest.raises(AttributeError):
            name.base = "q"
        with pytest.raises(AttributeError):
            del name.base

    def test_pickle_reinterns(self):
        import pickle

        name = ObjectName("p").deref().field("next")
        clone = pickle.loads(pickle.dumps(name))
        assert clone is name

    def test_intern_count_monotonic(self):
        from repro.names.object_names import interned_name_count

        before = interned_name_count()
        ObjectName("completely-fresh-intern-test-name")
        assert interned_name_count() == before + 1
        ObjectName("completely-fresh-intern-test-name")
        assert interned_name_count() == before + 1
