"""Unit tests for NameContext (typing, visibility, extensions)."""

import pytest

from repro.frontend import parse_and_analyze
from repro.names import DEREF, NameContext, ObjectName, nonvisible

SRC = """
struct node { int v; struct node *next; };
struct node *head;
int *gp, gv;
int *helper(int *p) {
    int local;
    return p;
}
int main() {
    int *mp;
    mp = &gv;
    return 0;
}
"""


@pytest.fixture(scope="module")
def ctx():
    analyzed = parse_and_analyze(SRC)
    return NameContext(analyzed.symbols, k=2)


class TestTyping:
    def test_variable_type(self, ctx):
        assert str(ctx.name_type(ObjectName("gv"))) == "int"
        assert str(ctx.name_type(ObjectName("gp"))) == "int*"

    def test_deref_type(self, ctx):
        assert str(ctx.name_type(ObjectName("gp").deref())) == "int"

    def test_struct_field_type(self, ctx):
        name = ObjectName("head").deref().field("next")
        assert str(ctx.name_type(name)) == "struct node*"

    def test_invalid_selector_is_none(self, ctx):
        assert ctx.name_type(ObjectName("gv").deref()) is None
        assert ctx.name_type(ObjectName("head").deref().field("nope")) is None

    def test_unknown_base_is_none(self, ctx):
        assert ctx.name_type(nonvisible(1)) is None

    def test_is_pointer_name(self, ctx):
        assert ctx.is_pointer_name(ObjectName("gp"))
        assert not ctx.is_pointer_name(ObjectName("gv"))


class TestVisibility:
    def test_globals_visible_everywhere(self, ctx):
        assert ctx.visible_in_callee(ObjectName("gp").deref(), "helper")

    def test_locals_not_visible_in_callee(self, ctx):
        assert not ctx.visible_in_callee(ObjectName("main::mp"), "helper")

    def test_return_slot_visible(self, ctx):
        assert ctx.visible_in_callee(ObjectName("helper$ret"), "helper")

    def test_owned_by(self, ctx):
        assert ctx.owned_by(ObjectName("helper::local"), "helper")
        assert not ctx.owned_by(ObjectName("gv"), "helper")

    def test_survives_return(self, ctx):
        assert ctx.survives_return(ObjectName("gp"), "helper")
        assert ctx.survives_return(ObjectName("helper$ret"), "helper")
        assert not ctx.survives_return(ObjectName("helper::p"), "helper")
        assert not ctx.survives_return(nonvisible(1), "helper")


class TestExtensions:
    def test_pointer_extensions_bounded_by_derefs(self, ctx):
        t = ctx.name_type(ObjectName("head"))
        exts = [ext for ext, _ in ctx.extensions(t, 2)]
        assert (DEREF,) in exts
        # No extension uses more than 2 derefs.
        assert all(ext.count(DEREF) <= 2 for ext in exts)

    def test_struct_fields_enumerated(self, ctx):
        t = ctx.name_type(ObjectName("head").deref())
        exts = {ext for ext, _ in ctx.extensions(t, 1)}
        assert ("v",) in exts
        assert ("next",) in exts
        assert ("next", DEREF) in exts

    def test_scalar_has_no_extensions(self, ctx):
        t = ctx.name_type(ObjectName("gv"))
        assert list(ctx.extensions(t, 3)) == []

    def test_extension_pairs_k_limited(self, ctx):
        a = ObjectName("head").deref()
        b = ObjectName("head").deref()  # trivial, but check the machinery
        pairs = ctx.extension_pairs(ObjectName("head"), ObjectName("main::mp"))
        for pair in pairs:
            assert pair.first.num_derefs <= 2
            assert pair.second.num_derefs <= 2

    def test_extension_pairs_memoized(self, ctx):
        a = ObjectName("head")
        b = ObjectName("gp")
        assert ctx.extension_pairs(a, b) is ctx.extension_pairs(a, b)

    def test_type_invalid_other_side_skipped(self, ctx):
        # Extending (struct-node ptr, int ptr) pair: int* side cannot
        # take ->next, so those extensions are dropped.
        pairs = ctx.extension_pairs(ObjectName("head"), ObjectName("gp"))
        for pair in pairs:
            assert "next" not in pair.second.selectors or pair.second.base == "head"
