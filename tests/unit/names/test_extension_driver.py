"""Regression: extension enumeration must drive from the untruncated
side (binary-tree k=1 soundness gap found by the fuzzer)."""

import pytest

from repro.frontend import parse_and_analyze
from repro.names import NameContext, ObjectName

SRC = """
struct expr { int op; struct expr *lhs; struct expr *rhs; };
struct expr *e, *l;
int main() { e->lhs = l; return 0; }
"""


@pytest.fixture(scope="module")
def ctx():
    return NameContext(parse_and_analyze(SRC).symbols, k=1)


def test_truncated_member_pairs_with_field_extensions(ctx):
    # (e->lhs~, *l): the truncated side's point-type is expr*, but the
    # pair's extensions must follow *l's struct type.
    truncated = ObjectName("e", ("*", "lhs"), truncated=True)
    star_l = ObjectName("l").deref()
    pairs = {str(p) for p in ctx.extension_pairs(truncated, star_l)}
    assert "(e->lhs~, l->lhs)" in pairs
    assert "(e->lhs~, l->rhs)" in pairs
    assert "(e->lhs~, l->op)" in pairs


def test_order_insensitive(ctx):
    truncated = ObjectName("e", ("*", "lhs"), truncated=True)
    star_l = ObjectName("l").deref()
    forward = set(ctx.extension_pairs(truncated, star_l))
    backward = set(ctx.extension_pairs(star_l, truncated))
    assert forward == backward


def test_both_untruncated_unchanged(ctx):
    star_e = ObjectName("e").deref()
    star_l = ObjectName("l").deref()
    pairs = {str(p) for p in ctx.extension_pairs(star_e, star_l)}
    assert "(e->lhs, l->lhs)" in pairs
