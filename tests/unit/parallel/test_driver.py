"""The sharded process-pool driver: ordering, isolation, deadlines.

Workers are module-level so they pickle under both ``fork`` and
``spawn``.  The crash worker kills its process with ``os._exit`` — the
hard case a plain exception handler can't see.
"""

import os
import time

import pytest

from repro.parallel import (
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    run_sharded,
)

pytestmark = pytest.mark.parallel


def double(x):
    return x * 2


def fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def crash_on_two(x):
    if x == 2:
        os._exit(42)
    return x


def sleep_on_one(x):
    if x == 1:
        time.sleep(30)
    return x


class TestOrderingAndErrors:
    def test_results_come_back_in_unit_order(self):
        outcomes = run_sharded(double, [3, 1, 2], jobs=2)
        assert [o.value for o in outcomes] == [6, 2, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)

    def test_worker_exception_degrades_only_that_unit(self):
        outcomes = run_sharded(fail_on_three, [1, 2, 3, 4], jobs=2)
        assert [o.status for o in outcomes] == [
            STATUS_OK,
            STATUS_OK,
            STATUS_ERROR,
            STATUS_OK,
        ]
        assert "boom" in outcomes[2].error
        assert outcomes[2].value is None

    def test_serial_path_has_identical_semantics(self):
        parallel = run_sharded(fail_on_three, [1, 2, 3, 4], jobs=2)
        serial = run_sharded(fail_on_three, [1, 2, 3, 4], jobs=1)
        assert [(o.status, o.value) for o in serial] == [
            (o.status, o.value) for o in parallel
        ]

    def test_empty_and_single_unit(self):
        assert run_sharded(double, [], jobs=4) == []
        (only,) = run_sharded(double, [21], jobs=4)
        assert only.ok and only.value == 42

    def test_outcome_as_dict_is_json_shaped(self):
        (outcome,) = run_sharded(fail_on_three, [3], jobs=1)
        doc = outcome.as_dict()
        assert doc["status"] == STATUS_ERROR
        assert doc["index"] == 0
        assert isinstance(doc["seconds"], float)


class TestCrashIsolation:
    def test_dead_worker_degrades_only_its_unit(self):
        outcomes = run_sharded(
            crash_on_two, [1, 2, 3, 4], jobs=2, max_pool_restarts=1
        )
        statuses = [o.status for o in outcomes]
        assert statuses[1] == STATUS_CRASHED
        assert statuses[0] == STATUS_OK
        assert statuses[2] == STATUS_OK
        assert statuses[3] == STATUS_OK
        assert [o.value for o in outcomes if o.ok] == [1, 3, 4]


class TestGlobalDeadline:
    def test_deadline_degrades_the_slow_unit_without_hanging(self):
        started = time.perf_counter()
        outcomes = run_sharded(sleep_on_one, [0, 1, 2], jobs=2, timeout=3.0)
        elapsed = time.perf_counter() - started
        assert elapsed < 20, "driver must not wait out the sleeping worker"
        assert outcomes[1].status == STATUS_TIMEOUT
        done = [o for o in outcomes if o.ok]
        assert all(o.value in (0, 2) for o in done)
