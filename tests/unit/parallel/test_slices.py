"""Slice-parallel solving must reproduce the serial fixpoint.

This is the determinism guarantee of docs/PARALLEL.md at the engine
level: for every job count, ``solve_sliced`` yields the identical fact
set (so identical may-alias answers at every node), because the
sequential closure pass re-runs the full worklist algorithm over the
merged warm store.  Taint bits are *conservative*: a sliced run never
certifies CLEAN a fact the serial run left TAINTED (the paper's
approximations 3/4 taint on the mere existence of a rebinding alias,
so serial processing order can certify a fact just before the tainting
alias appears — the closure, which sees every fact from the start,
taints those; never the reverse).
"""

import pytest

from repro.core.analysis import analyze_program
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.parallel.slices import partition_seeds, seed_node_ids, solve_sliced
from repro.programs.fixtures import FIGURE1
from repro.programs.generator import ProgramSpec, generate_program

pytestmark = pytest.mark.parallel


def _facts_view(solution):
    """Process-independent view of the store (names stringified —
    interned objects differ across processes)."""
    return {
        (nid, repr(assumption), repr(pair)): clean
        for (nid, assumption, pair), clean in solution.store.facts()
    }


def _generated_source(seed: int) -> str:
    return generate_program(
        ProgramSpec(
            name=f"slices{seed}",
            seed=seed,
            n_functions=3,
            n_globals=4,
            stmts_per_function=5,
            max_pointer_depth=1,
            pointer_density=0.85,
        )
    )


class TestSeedPartition:
    def test_seed_nodes_cover_assignments_and_calls(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        seeds = seed_node_ids(icfg)
        assert seeds == sorted(seeds)
        assert len(seeds) == len(set(seeds))
        for nid in seeds:
            node = icfg.node(nid)
            assert node.is_pointer_assignment or node.callee is not None

    def test_partition_is_deterministic_and_complete(self):
        seeds = list(range(10))
        groups = partition_seeds(seeds, 3)
        assert sorted(nid for group in groups for nid in group) == seeds
        assert groups == partition_seeds(seeds, 3)
        assert max(len(g) for g in groups) - min(len(g) for g in groups) <= 1

    def test_more_shards_than_seeds(self):
        groups = partition_seeds([7], 8)
        assert groups == [[7]]


class TestFixpointEquality:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_figure1_matches_serial(self, jobs):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        serial = analyze_program(analyzed, icfg, k=2, on_budget="partial")

        analyzed2 = parse_and_analyze(FIGURE1)
        icfg2 = build_icfg(analyzed2)
        sliced = solve_sliced(FIGURE1, analyzed2, icfg2, k=2, jobs=jobs)

        assert _facts_view(serial) == _facts_view(sliced)
        assert sliced.complete
        assert serial.percent_yes() == sliced.percent_yes()

    def test_generated_program_matches_serial(self):
        source = _generated_source(seed=11)
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        serial = analyze_program(analyzed, icfg, k=2, on_budget="partial")

        analyzed2 = parse_and_analyze(source)
        icfg2 = build_icfg(analyzed2)
        sliced = solve_sliced(source, analyzed2, icfg2, k=2, jobs=2)

        assert _facts_view(serial) == _facts_view(sliced)

    @pytest.mark.slow
    def test_scaling_fixture_matches_serial_conservatively(self):
        """A program large enough to exercise approximations 3/4 across
        slice boundaries: fact sets must agree exactly; taint may only
        differ in the conservative direction (sliced CLEAN ⇒ serial
        CLEAN)."""
        source = generate_program(ProgramSpec.for_target_nodes("slices-scale", 100))
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        serial = analyze_program(analyzed, icfg, k=3, on_budget="partial")

        analyzed2 = parse_and_analyze(source)
        icfg2 = build_icfg(analyzed2)
        sliced = solve_sliced(source, analyzed2, icfg2, k=3, jobs=2)

        serial_view = _facts_view(serial)
        sliced_view = _facts_view(sliced)
        assert serial_view.keys() == sliced_view.keys()
        over_certified = [
            key
            for key, clean in sliced_view.items()
            if clean and not serial_view[key]
        ]
        assert over_certified == []

    def test_sliced_solution_reports_slice_phase(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        sliced = solve_sliced(FIGURE1, analyzed, icfg, k=2, jobs=2)
        phases = sliced.phases.as_dict()
        assert "slices" in phases
        # Shard counters are aggregated into the closure's report, so
        # the sliced run records at least as many pops as serial.
        serial = analyze_program(
            *_reparse(FIGURE1), k=2, on_budget="partial"
        )
        assert (
            sliced.engine.worklist_pops >= serial.engine.worklist_pops
        )


def _reparse(source):
    analyzed = parse_and_analyze(source)
    return analyzed, build_icfg(analyzed)
