"""Unit tests for the may-hold store and its taint lattice."""

from repro.core import CLEAN, TAINTED, MayHoldStore
from repro.core import assumptions
from repro.names import AliasPair, ObjectName


def pair(a="a", b="b"):
    return AliasPair(ObjectName(a).deref(), ObjectName(b))


class TestMakeTrue:
    def test_absent_fact_is_false(self):
        store = MayHoldStore()
        assert not store.holds(0, assumptions.EMPTY, pair())

    def test_insert_and_query(self):
        store = MayHoldStore()
        assert store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.holds(0, assumptions.EMPTY, pair())
        assert store.is_clean(0, assumptions.EMPTY, pair())

    def test_duplicate_insert_is_noop(self):
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert not store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert len(store) == 1

    def test_tainted_then_clean_upgrades(self):
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), TAINTED)
        assert not store.is_clean(0, assumptions.EMPTY, pair())
        assert store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.is_clean(0, assumptions.EMPTY, pair())
        assert store.stats.upgrades == 1

    def test_clean_never_downgrades(self):
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert not store.make_true(0, assumptions.EMPTY, pair(), TAINTED)
        assert store.is_clean(0, assumptions.EMPTY, pair())

    def test_worklist_order(self):
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair("a", "b"), CLEAN)
        store.make_true(1, assumptions.EMPTY, pair("c", "d"), CLEAN)
        first = store.pop()
        second = store.pop()
        assert first[0] == 0 and second[0] == 1
        assert store.pop() is None


class TestDedupDiscipline:
    def test_upgrade_while_pending_processes_once(self):
        # A fact added TAINTED and upgraded to CLEAN before its pop is
        # merged into the queued entry: one pop, at the upgraded state.
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), TAINTED)
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.stats.worklist_pushes == 1
        assert store.stats.dedup_hits == 1
        fact = store.pop()
        assert fact == (0, assumptions.EMPTY, pair())
        assert store.taint_of(*fact) is CLEAN
        assert store.pop() is None
        assert store.stats.worklist_pops == 1

    def test_seed_discipline_processes_each_state(self):
        # dedup=False restores the seed's behaviour: the add and the
        # upgrade each get their own queue entry and their own pop.
        store = MayHoldStore(dedup=False)
        store.make_true(0, assumptions.EMPTY, pair(), TAINTED)
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.stats.worklist_pushes == 2
        assert store.stats.dedup_hits == 0
        assert store.pop() is not None
        assert store.pop() is not None
        assert store.pop() is None
        assert store.stats.worklist_pops == 2

    def test_upgrade_after_pop_reenqueues(self):
        # An upgrade after the fact left the queue must re-enter it —
        # downstream facts still need the CLEAN propagation.
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), TAINTED)
        assert store.pop() is not None
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.pop() == (0, assumptions.EMPTY, pair())
        assert store.stats.worklist_pops == 2
        assert store.stats.stale_skips == 0

    def test_stale_entry_skipped(self):
        # Defensive net: a queue entry whose store state was already
        # processed (same taint as at the last pop) is skipped.
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair(), CLEAN)
        assert store.pop() is not None
        store._enqueue((0, assumptions.EMPTY, pair()))
        assert store.pop() is None
        assert store.stats.stale_skips == 1
        assert store.stats.worklist_pops == 1

    def test_taint_all_demotes_and_drains(self):
        store = MayHoldStore()
        store.make_true(0, assumptions.EMPTY, pair("a", "b"), CLEAN)
        store.make_true(1, assumptions.EMPTY, pair("c", "d"), CLEAN)
        store.make_true(2, assumptions.EMPTY, pair("e", "f"), TAINTED)
        demoted = store.taint_all()
        assert demoted == 2  # only the CLEAN facts change state
        assert store.pop() is None
        assert store.pending == 0
        assert all(clean is TAINTED for _, clean in store.facts())
        assert len(store) == 3  # facts survive, only their taint drops


class TestIndexes:
    def test_at_node(self):
        store = MayHoldStore()
        store.make_true(3, assumptions.EMPTY, pair("x", "y"), CLEAN)
        store.make_true(3, assumptions.EMPTY, pair("x", "z"), CLEAN)
        store.make_true(4, assumptions.EMPTY, pair("x", "y"), CLEAN)
        assert len(list(store.at_node(3))) == 2
        assert len(list(store.at_node(4))) == 1
        assert list(store.at_node(99)) == []

    def test_at_node_with_name(self):
        store = MayHoldStore()
        p = AliasPair(ObjectName("x").deref(), ObjectName("y"))
        store.make_true(3, assumptions.EMPTY, p, CLEAN)
        hits = list(store.at_node_with_name(3, ObjectName("y")))
        assert hits == [(assumptions.EMPTY, p)]
        assert list(store.at_node_with_name(3, ObjectName("x"))) == []

    def test_at_node_with_base(self):
        store = MayHoldStore()
        p = AliasPair(ObjectName("x").deref(), ObjectName("y"))
        store.make_true(3, assumptions.EMPTY, p, CLEAN)
        assert list(store.at_node_with_base(3, "x")) == [(assumptions.EMPTY, p)]
        assert list(store.at_node_with_base(3, "y")) == [(assumptions.EMPTY, p)]
        assert list(store.at_node_with_base(3, "z")) == []

    def test_at_node_assuming(self):
        store = MayHoldStore()
        assumed = pair("g", "h")
        aa = assumptions.single(assumed)
        store.make_true(5, aa, pair("x", "y"), CLEAN)
        store.make_true(5, assumptions.EMPTY, pair("x", "y"), CLEAN)
        hits = list(store.at_node_assuming(5, assumed))
        assert hits == [(aa, pair("x", "y"))]

    def test_pairs_at_deduplicates_assumptions(self):
        store = MayHoldStore()
        aa = assumptions.single(pair("g", "h"))
        store.make_true(5, aa, pair("x", "y"), CLEAN)
        store.make_true(5, assumptions.EMPTY, pair("x", "y"), CLEAN)
        assert store.pairs_at(5) == {pair("x", "y")}
