"""Unit tests for bind/back-bind (paper §4, Modeling Parameter Bindings)."""

import pytest

from repro.core.bind import CallBinder
from repro.frontend import parse_and_analyze
from repro.icfg import CallInfo, NodeKind, build_icfg
from repro.names import AliasPair, NameContext, ObjectName, nonvisible


def binder_for(source, callee, k=3):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    ctx = NameContext(analyzed.symbols, k)
    for node in icfg.nodes:
        if node.kind is NodeKind.CALL and node.callee == callee:
            assert isinstance(node.stmt, CallInfo)
            return CallBinder(ctx, node.stmt, analyzed.symbols.function(callee))
    raise AssertionError(f"no call to {callee}")


class TestBindEmpty:
    def test_simple_formal_actual(self):
        # P(a): (*f, *a) in bind(empty)  [paper's first case]
        binder = binder_for(
            """
            int *g;
            void p(int *f) { }
            int main() { p(g); return 0; }
            """,
            "p",
        )
        pairs = {str(b.entry_pair) for b in binder.bind_empty()}
        assert "(*g, *p::f)" in pairs

    def test_nonvisible_actual(self):
        # P(a) with caller-local a: (*f, nonvisible) representing *a.
        binder = binder_for(
            """
            void p(int *f) { }
            int main() { int *a, v; a = &v; p(a); return 0; }
            """,
            "p",
        )
        bound = [b for b in binder.bind_empty() if b.represents is not None]
        assert bound, "expected a nonvisible binding"
        rep = bound[0]
        assert rep.entry_pair.has_nonvisible
        assert str(rep.represents) == "*main::a"

    def test_address_of_actual(self):
        # P(&g): (*f, g) in bind(empty).
        binder = binder_for(
            """
            int g;
            void p(int *f) { }
            int main() { p(&g); return 0; }
            """,
            "p",
        )
        pairs = {str(b.entry_pair) for b in binder.bind_empty()}
        assert "(g, *p::f)" in pairs

    def test_overlapping_actuals_paper_example(self):
        # P(a, *a) with formals f1 (int**), f2 (int*): (**f1, *f2).
        binder = binder_for(
            """
            int **g;
            void p(int **f1, int *f2) { }
            int main() { p(g, *g); return 0; }
            """,
            "p",
        )
        pairs = {str(b.entry_pair) for b in binder.bind_empty()}
        assert "(**p::f1, *p::f2)" in pairs

    def test_identical_actuals(self):
        binder = binder_for(
            """
            int *g;
            void p(int *f1, int *f2) { }
            int main() { p(g, g); return 0; }
            """,
            "p",
        )
        pairs = {str(b.entry_pair) for b in binder.bind_empty()}
        assert "(*p::f1, *p::f2)" in pairs

    def test_struct_pointer_chains(self):
        # Value copy materializes the implicit ->next chains.
        binder = binder_for(
            """
            struct node { int v; struct node *next; };
            struct node *g;
            void p(struct node *f) { }
            int main() { p(g); return 0; }
            """,
            "p",
            k=2,
        )
        pairs = {str(b.entry_pair) for b in binder.bind_empty()}
        assert "(*g, *p::f)" in pairs
        assert "(g->next, p::f->next)" in pairs


class TestReps:
    def test_global_visible(self):
        binder = binder_for(
            """
            int *g;
            void p(int *f) { }
            int main() { p(g); return 0; }
            """,
            "p",
        )
        g = ObjectName("g")
        star_g = g.deref()
        reps = binder.reps(star_g)
        # *g itself (global) and *f (through the binding).
        rendered = {str(r) for r in reps}
        assert rendered == {"*g", "*p::f"}

    def test_caller_local_not_represented(self):
        binder = binder_for(
            """
            void p(int v) { }
            int main() { int *a, x; a = &x; p(0); return 0; }
            """,
            "p",
        )
        assert binder.reps(ObjectName("main::a").deref()) == []

    def test_actual_without_deref_not_represented(self):
        # The actual itself (name `a`, no deref) lives in the caller
        # only; the callee's copy is a different location.
        binder = binder_for(
            """
            void p(int *f) { }
            int main() { int *a, x; a = &x; p(a); return 0; }
            """,
            "p",
        )
        assert binder.reps(ObjectName("main::a")) == []


class TestBindPair:
    def test_paper_bind_pair_example(self):
        # q global, r caller-local: bind((*q, *r)) =
        # {((*q, nv), *r), ((*f, nv), *r)}.
        binder = binder_for(
            """
            int *q;
            void p(int *f) { }
            int main() { int *r, x; r = &x; q = &x; p(q); return 0; }
            """,
            "p",
        )
        star_q = ObjectName("q").deref()
        star_r = ObjectName("main::r").deref()
        bound = binder.bind_pair(AliasPair(star_q, star_r))
        rendered = {(str(b.entry_pair), str(b.represents)) for b in bound}
        assert rendered == {
            ("($nv1, *q)", "*main::r"),
            ("($nv1, *p::f)", "*main::r"),
        }

    def test_both_visible(self):
        binder = binder_for(
            """
            int *q, g;
            void p(void) { }
            int main() { q = &g; p(); return 0; }
            """,
            "p",
        )
        pair = AliasPair(ObjectName("q").deref(), ObjectName("g"))
        bound = binder.bind_pair(pair)
        assert len(bound) == 1
        assert bound[0].entry_pair == pair
        assert bound[0].represents is None

    def test_both_invisible_empty(self):
        binder = binder_for(
            """
            void p(void) { }
            int main() { int *a, *b, x; a = &x; b = a; p(); return 0; }
            """,
            "p",
        )
        pair = AliasPair(
            ObjectName("main::a").deref(), ObjectName("main::b").deref()
        )
        assert binder.bind_pair(pair) == ()
        assert binder.both_invisible(pair)

    def test_memoized(self):
        binder = binder_for(
            """
            int *q, g;
            void p(void) { }
            int main() { q = &g; p(); return 0; }
            """,
            "p",
        )
        pair = AliasPair(ObjectName("q").deref(), ObjectName("g"))
        assert binder.bind_pair(pair) is binder.bind_pair(pair)
