"""Unit tests for the observability layer (phase timer, reports)."""

import json

from repro.core.metrics import (
    PHASE_ICFG,
    PHASE_INIT,
    PHASE_PARSE,
    PHASE_POST,
    PHASE_PROPAGATE,
    BudgetOutcome,
    EngineReport,
    PhaseTimer,
)


class TestPhaseTimer:
    def test_phase_records_elapsed(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        assert timer.get("work") >= 0.0
        assert "work" in timer.as_dict()

    def test_reentry_accumulates(self):
        timer = PhaseTimer()
        timer.record("work", 1.0)
        timer.record("work", 2.0)
        assert timer.get("work") == 3.0

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().get("never") == 0.0

    def test_total_sums_phases(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        timer.record("b", 2.5)
        assert timer.total == 3.5

    def test_records_on_exception(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert "boom" in timer.as_dict()

    def test_nesting_measures_each_span(self):
        timer = PhaseTimer()
        with timer.phase("outer"):
            with timer.phase("inner"):
                pass
        assert timer.get("outer") >= timer.get("inner") >= 0.0

    def test_as_dict_is_a_snapshot(self):
        timer = PhaseTimer()
        timer.record("a", 1.0)
        snapshot = timer.as_dict()
        timer.record("a", 1.0)
        assert snapshot["a"] == 1.0

    def test_canonical_phase_names(self):
        assert (PHASE_PARSE, PHASE_ICFG, PHASE_INIT, PHASE_PROPAGATE, PHASE_POST) == (
            "parse",
            "icfg",
            "init",
            "propagate",
            "post",
        )


class TestReports:
    def test_budget_outcome_round_trips_through_json(self):
        outcome = BudgetOutcome(
            exceeded=True, reason="max_facts", max_facts=10, demoted_facts=7
        )
        loaded = json.loads(json.dumps(outcome.as_dict()))
        assert loaded["exceeded"] is True
        assert loaded["reason"] == "max_facts"
        assert loaded["max_facts"] == 10
        assert loaded["demoted_facts"] == 7
        assert loaded["deadline_seconds"] is None

    def test_default_budget_not_exceeded(self):
        outcome = BudgetOutcome()
        assert not outcome.exceeded
        assert outcome.reason is None

    def test_engine_report_as_dict_covers_every_counter(self):
        report = EngineReport(facts=1, worklist_pushes=2, dedup_hits=3)
        payload = report.as_dict()
        # Every dataclass field is serialized — a new counter must show
        # up in the stats document, not silently vanish.
        assert set(payload) == set(EngineReport.__dataclass_fields__)
        assert payload["facts"] == 1
        assert payload["worklist_pushes"] == 2
        assert payload["dedup_hits"] == 3
