"""Unit tests for the integer-ID fact kernel (PR 6).

The contract under test: for any program, the kernel's fact set —
pairs, assumptions, taint bits — and every per-node query answer are
identical to the reference engine's (insertion order may differ; the
kernel's directed return join skips the reference's redundant record
rescans).
"""

import pytest

from repro import analyze_source
from repro.core.analysis import DEFAULT_ENGINE, ENGINES, analyze_program
from repro.core.kernel import KernelAnalysis
from repro.core.store import CLEAN, TAINTED, MayHoldStore
from repro.core.worklist import MayHoldAnalysis
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.names import AliasPair, ObjectName
from repro.programs import ALL_FIXTURES

FIGURE1 = ALL_FIXTURES["figure1"]


def _solve(engine_cls, source, k=3, **kwargs):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    analysis = engine_cls(analyzed, icfg, k=k, **kwargs)
    store = analysis.run()
    return analysis, store


def _solve_both(source, k=3, **kwargs):
    _, ref = _solve(MayHoldAnalysis, source, k=k, **kwargs)
    _, ker = _solve(KernelAnalysis, source, k=k, **kwargs)
    return ref, ker


class TestEngineSelection:
    def test_kernel_is_the_default_engine(self):
        assert DEFAULT_ENGINE == "kernel"
        assert set(ENGINES) == {"kernel", "reference", "summary"}

    def test_unknown_engine_rejected(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        with pytest.raises(ValueError, match="engine must be one of"):
            analyze_program(analyzed, icfg, engine="turbo")

    def test_kernel_requires_dedup(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        with pytest.raises(ValueError, match="dedup"):
            KernelAnalysis(analyzed, icfg, dedup=False)

    def test_dedup_false_falls_back_to_reference(self):
        # The A/B worklist-discipline baseline always runs on the
        # reference engine, whatever engine was selected.
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        solution = analyze_program(analyzed, icfg, dedup=False)
        assert isinstance(solution.store, MayHoldStore)

    def test_engine_flag_selects_reference(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        solution = analyze_program(analyzed, icfg, engine="reference")
        assert isinstance(solution.store, MayHoldStore)

    def test_analyze_source_default_uses_kernel(self):
        solution = analyze_source(FIGURE1)
        assert type(solution.store).__name__ == "KernelStore"


class TestEquivalenceSmall:
    @pytest.mark.parametrize("name", ["figure1", "matrix_swap"])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_fact_sets_taint_and_pairs_match(self, name, k):
        source = ALL_FIXTURES[name]
        ref, ker = _solve_both(source, k=k)
        assert dict(ref.facts()) == dict(ker.facts())
        nids = {nid for (nid, _, _), _ in ref.facts()}
        for nid in nids:
            assert ref.pairs_at(nid) == ker.pairs_at(nid)

    def test_fact_counts_match(self):
        ref, ker = _solve_both(FIGURE1)
        assert len(ref) == len(ker)


class TestKernelStoreQueries:
    """The KernelStore answers every MayHoldStore query identically."""

    def _stores(self):
        ref, ker = _solve_both(FIGURE1)
        return ref, ker

    def test_holds_and_is_clean_agree(self):
        ref, ker = self._stores()
        for (nid, assumption, pair), _ in ref.facts():
            assert ker.holds(nid, assumption, pair)
            assert ker.is_clean(nid, assumption, pair) == ref.is_clean(
                nid, assumption, pair
            )
            assert ker.taint_of(nid, assumption, pair) == ref.taint_of(
                nid, assumption, pair
            )

    def test_absent_fact_queries(self):
        _, ker = self._stores()
        ghost = AliasPair(ObjectName("nosuch"), ObjectName("other").deref())
        assert not ker.holds(0, (), ghost)
        assert not ker.is_clean(0, (), ghost)
        with pytest.raises(KeyError):
            ker.taint_of(0, (), ghost)

    def test_at_node_buckets_agree(self):
        ref, ker = self._stores()
        nids = {nid for (nid, _, _), _ in ref.facts()}
        for nid in nids:
            assert set(ref.at_node(nid)) == set(ker.at_node(nid))

    def test_at_node_with_name_and_base_agree(self):
        ref, ker = self._stores()
        seen = set()
        for (nid, _, pair), _ in ref.facts():
            for name in (pair.first, pair.second):
                if (nid, name) in seen:
                    continue
                seen.add((nid, name))
                assert set(ref.at_node_with_name(nid, name)) == set(
                    ker.at_node_with_name(nid, name)
                )
                assert set(ref.at_node_with_base(nid, name.base)) == set(
                    ker.at_node_with_base(nid, name.base)
                )

    def test_at_node_assuming_agrees(self):
        ref, ker = self._stores()
        for (nid, assumption, _), _ in ref.facts():
            for assumed in assumption:
                assert set(ref.at_node_assuming(nid, assumed)) == set(
                    ker.at_node_assuming(nid, assumed)
                )

    def test_facts_json_matches_object_level_serialization(self):
        from repro.io import pair_to_json

        _, ker = self._stores()
        fast = ker.facts_json()
        slow = [
            {
                "node": nid,
                "assume": [pair_to_json(a) for a in assumption],
                "pair": pair_to_json(pair),
                "clean": bool(clean),
            }
            for (nid, assumption, pair), clean in ker.facts()
        ]
        assert fast == slow


class TestKernelStoreUpdates:
    def test_object_level_make_true_warm_start(self):
        # The parallel slice closure warm-starts a kernel through the
        # object-level make_true; the fact must be queryable and queued.
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        kernel = KernelAnalysis(analyzed, icfg, k=3)
        pair = AliasPair(ObjectName("g1").deref(), ObjectName("g2"))
        assert kernel.store.make_true(5, (), pair, TAINTED)
        assert kernel.store.holds(5, (), pair)
        assert not kernel.store.is_clean(5, (), pair)
        assert kernel.store.pending == 1
        # Re-asserting the same taint is a dedup no-op ...
        assert not kernel.store.make_true(5, (), pair, TAINTED)
        # ... and a CLEAN re-derivation upgrades.
        assert kernel.store.make_true(5, (), pair, CLEAN)
        assert kernel.store.is_clean(5, (), pair)

    def test_clear_worklist_drops_pending(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        kernel = KernelAnalysis(analyzed, icfg, k=3)
        pair = AliasPair(ObjectName("g1").deref(), ObjectName("g2"))
        kernel.store.make_true(3, (), pair, CLEAN)
        assert kernel.store.pending == 1
        kernel.store.clear_worklist()
        assert kernel.store.pending == 0
        assert kernel.store.holds(3, (), pair)

    def test_taint_all_demotes_everything(self):
        analyzed = parse_and_analyze(FIGURE1)
        icfg = build_icfg(analyzed)
        kernel = KernelAnalysis(analyzed, icfg, k=3)
        store = kernel.run()
        clean_before = sum(1 for _, clean in store.facts() if clean)
        assert clean_before > 0
        demoted = store.taint_all()
        assert demoted == clean_before
        assert all(not clean for _, clean in store.facts())
        assert store.pending == 0


class TestBudgets:
    def test_max_facts_budget_taints_partial_solution(self):
        analyzed = parse_and_analyze(ALL_FIXTURES["linked_list"])
        icfg = build_icfg(analyzed)
        solution = analyze_program(
            analyzed, icfg, max_facts=200, on_budget="partial"
        )
        assert solution.budget.exceeded
        assert solution.budget.reason == "max_facts"
        assert all(not clean for _, clean in solution.store.facts())

    def test_deadline_budget(self):
        analyzed = parse_and_analyze(ALL_FIXTURES["linked_list"])
        icfg = build_icfg(analyzed)
        solution = analyze_program(
            analyzed, icfg, deadline_seconds=0.0, on_budget="partial"
        )
        assert solution.budget.exceeded
        assert solution.budget.reason == "deadline"


class TestEngineReport:
    def test_report_core_counters_match_reference(self):
        # Fact/pop/push counters describe the shared semantics and must
        # agree; the join_* counters measure *effective* work and are
        # allowed to be smaller on the kernel (directed joins).
        ra, _ = _solve(MayHoldAnalysis, FIGURE1)
        ka, _ = _solve(KernelAnalysis, FIGURE1)
        ref = ra.engine_report()
        ker = ka.engine_report()
        assert ref.facts == ker.facts
        assert ker.join_calls <= ref.join_calls
        assert ker.join_fanout <= ref.join_fanout

    def test_solution_report_plumbed_through(self):
        solution = analyze_source(FIGURE1)
        assert solution.engine.facts == len(solution.store)
