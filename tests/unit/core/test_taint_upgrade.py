"""The taint lattice end to end: clean re-derivations must upgrade
facts and re-propagate (absent < tainted < clean)."""

import pytest

from repro import analyze_source


class TestUpgradePropagation:
    def test_fact_with_both_clean_and_tainted_derivations_counts_yes(self):
        # (**u, a) is derivable two ways at p = &a:
        #   - via the pairing with an independent fact (tainted), and
        #   - via case 3.i from (p, *u) directly (clean).
        # Whichever order the worklist takes, the final state is clean.
        source = """
        int *p, **u, *z, a, c;
        int main() {
            u = &p;
            if (c) { z = p; }
            p = &a;
            return 0;
        }
        """
        solution = analyze_source(source)
        node = next(
            n
            for n in solution.icfg.nodes
            if n.is_pointer_assignment and "p = &a" in n.label()
        )
        from repro.names import AliasPair, ObjectName

        pair = AliasPair(ObjectName("u").deref().deref(), ObjectName("a"))
        facts = [
            (aa, pa)
            for aa, pa in solution.store.at_node(node.nid)
            if pa == pair
        ]
        assert facts, "the derived alias must exist"
        assert any(
            solution.store.is_clean(node.nid, aa, pa) for aa, pa in facts
        ), "the clean derivation must win"

    def test_upgrades_counted_in_stats(self):
        source = """
        int *p, **u, *z, a, c;
        int main() {
            u = &p;
            if (c) { z = p; }
            p = &a;
            z = *u;
            return 0;
        }
        """
        solution = analyze_source(source)
        # Upgrades may or may not fire depending on worklist order, but
        # the counter must be consistent with the lattice (no negative
        # or absurd values) and the store must be internally coherent.
        stats = solution.store.stats
        assert stats.upgrades >= 0
        assert stats.facts == len(solution.store)
