"""Unit tests for the interprocedural rules (paper Figures 2 and 3)."""

import pytest

from repro import analyze_source
from repro.icfg import NodeKind
from repro.names import AliasPair, ObjectName


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    name = ObjectName(text)
    for _ in range(stars):
        name = name.deref()
    return name


def pair(a, b):
    return AliasPair(n(a), n(b))


def returns_of(sol, callee, proc="main"):
    rets = [
        node
        for node in sol.icfg.nodes
        if node.kind is NodeKind.RETURN and node.callee == callee and node.proc == proc
    ]
    return sorted(rets, key=lambda node: node.nid)


class TestRule1PassThrough:
    def test_invisible_alias_survives_call(self):
        # (a, *p) with both caller-local: the callee cannot touch it.
        sol = analyze_source(
            """
            void nop(void) { }
            int main() { int a, *p; p = &a; nop(); return 0; }
            """
        )
        (ret,) = returns_of(sol, "nop")
        assert pair("main::a", "*main::p") in sol.may_alias(ret)

    def test_visible_alias_not_blindly_passed(self):
        # (g, *p) with g global: must be recovered through the callee's
        # exit facts — and is, because the callee leaves it intact.
        sol = analyze_source(
            """
            int g;
            void nop(void) { }
            int main() { int *p; p = &g; nop(); return 0; }
            """
        )
        (ret,) = returns_of(sol, "nop")
        assert pair("g", "*main::p") in sol.may_alias(ret)


class TestRule2BothVisible:
    def test_global_alias_roundtrip(self):
        sol = analyze_source(
            """
            int *g, v;
            void touch(void) { g = g; }
            int main() { g = &v; touch(); return 0; }
            """
        )
        (ret,) = returns_of(sol, "touch")
        assert pair("*g", "v") in sol.may_alias(ret)

    def test_callee_kill_reflected(self):
        # The callee nulls g; the conditional facts still include the
        # entry assumption path, so may-alias keeps (safe) — but the
        # alias created *inside* is visible at its own nodes.
        sol = analyze_source(
            """
            int *g, v, w;
            void retarget(void) { g = &w; }
            int main() { g = &v; retarget(); return 0; }
            """
        )
        (ret,) = returns_of(sol, "retarget")
        assert pair("*g", "w") in sol.may_alias(ret)

    def test_callee_created_global_alias_returns(self):
        sol = analyze_source(
            """
            int *g1, g2;
            void make(void) { g1 = &g2; }
            int main() { make(); return 0; }
            """
        )
        (ret,) = returns_of(sol, "make")
        assert pair("*g1", "g2") in sol.may_alias(ret)


class TestRule3OneNonvisible:
    def test_callee_aliases_global_to_local_target(self):
        # p points at caller-local a; callee sets g = p-value via formal.
        sol = analyze_source(
            """
            int *g;
            void capture(int *f) { g = f; }
            int main() { int a; capture(&a); return 0; }
            """
        )
        (ret,) = returns_of(sol, "capture")
        assert pair("*g", "main::a") in sol.may_alias(ret)

    def test_formal_based_names_die_at_return(self):
        sol = analyze_source(
            """
            int *g;
            void capture(int *f) { g = f; }
            int main() { int a; capture(&a); return 0; }
            """
        )
        (ret,) = returns_of(sol, "capture")
        for alias in sol.may_alias(ret):
            assert "capture::f" not in str(alias)


class TestRealizablePaths:
    SRC = """
    int *x, *y, a, b;
    int *id(int *p) { return p; }
    int main() {
        x = id(&a);
        y = id(&b);
        return 0;
    }
    """

    def test_first_call_sees_only_first_actual(self):
        sol = analyze_source(self.SRC)
        first, second = returns_of(sol, "id")
        first_pairs = sol.may_alias(first)
        assert pair("a", "*id$ret") in first_pairs
        assert pair("b", "*id$ret") not in first_pairs

    def test_no_cross_call_contamination(self):
        sol = analyze_source(self.SRC)
        exit_main = sol.icfg.exit_of("main")
        pairs = sol.may_alias(exit_main)
        assert pair("a", "*x") in pairs
        assert pair("b", "*y") in pairs
        assert pair("b", "*x") not in pairs
        assert pair("a", "*y") not in pairs


class TestRecursion:
    def test_recursive_identity_converges(self):
        sol = analyze_source(
            """
            int *rec(int *p, int d) {
                if (d <= 0) { return p; }
                return rec(p, d - 1);
            }
            int *r; int v;
            int main() { r = rec(&v, 3); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("v", "*r") in sol.may_alias(exit_main)

    def test_mutual_recursion(self):
        sol = analyze_source(
            """
            int *g, v;
            void even(int d);
            void odd(int d) { g = &v; even(d - 1); }
            void even(int d) { if (d > 0) { odd(d); } }
            int main() { even(4); return 0; }
            """
        )
        (ret,) = returns_of(sol, "even", proc="main")
        assert pair("*g", "v") in sol.may_alias(ret)


class TestReturnValues:
    def test_returned_pointer_aliases_caller_var(self):
        sol = analyze_source(
            """
            struct node { int v; struct node *next; };
            struct node *mk(void) { struct node *n; n = malloc(8); return n; }
            struct node *head;
            int main() { head = mk(); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        # head and mk$ret both point at the same heap node; aliasing of
        # their targets is reflected through the return slot.
        assert pair("*head", "*mk$ret") in sol.may_alias(exit_main)

    def test_chained_calls(self):
        sol = analyze_source(
            """
            int *id(int *p) { return p; }
            int *twice(int *p) { return id(id(p)); }
            int *r; int v;
            int main() { r = twice(&v); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("v", "*r") in sol.may_alias(exit_main)


class TestBindRegistryDiscipline:
    """Regression guard for the silent `_join_one` drop.

    The seed returned silently when a registered BindRecord's call fact
    was missing, discarding the return join.  Registration only happens
    for facts already made true and facts are never retracted, so the
    miss indicates engine corruption: it is now counted
    (``stale_bind_records``) and asserted on.  These programs stress the
    orderings that could expose it — exit facts arriving before call
    facts (reverse matching), recursion, and repeated call sites."""

    def _assert_no_stale_records(self, source):
        sol = analyze_source(source)
        assert sol.engine.stale_bind_records == 0
        return sol

    def test_exit_before_call_ordering(self):
        # Both call sites share one callee: the second call processes
        # after the callee's exit facts already exist, exercising the
        # reverse-matching join against pre-existing exit facts.
        sol = self._assert_no_stale_records(
            """
            int *g;
            void capture(int *f) { g = f; }
            int main() {
                int a, b;
                capture(&a);
                capture(&b);
                return 0;
            }
            """
        )
        first, second = returns_of(sol, "capture")
        assert pair("*g", "main::a") in sol.may_alias(first)
        assert pair("*g", "main::b") in sol.may_alias(second)

    def test_recursive_call_exit_interleaving(self):
        self._assert_no_stale_records(
            """
            int *rec(int *p, int d) {
                if (d <= 0) { return p; }
                return rec(p, d - 1);
            }
            int *r; int v;
            int main() { r = rec(&v, 3); return 0; }
            """
        )

    def test_two_nonvisible_join(self):
        # Two-assumption exits join pairs of records (the rec1 x rec2
        # product) — every combination must find its call facts.
        self._assert_no_stale_records(
            """
            void link(int **x, int **y) { *x = *y; }
            int main() {
                int *p, *q, a;
                q = &a;
                link(&p, &q);
                return 0;
            }
            """
        )


class TestNestedNonvisible:
    def test_nonvisible_through_two_levels(self):
        # main's local leaks through two nested calls via a global.
        sol = analyze_source(
            """
            int *g;
            void inner(int *f) { g = f; }
            void outer(int *f) { inner(f); }
            int main() { int a; outer(&a); return 0; }
            """
        )
        exit_main = sol.icfg.exit_of("main")
        assert pair("*g", "main::a") in sol.may_alias(exit_main)
