"""Rendering and representative-coverage details of the solution layer."""

import pytest

from repro import analyze_source
from repro.core.solution import _represents
from repro.names import AliasPair, ObjectName


class TestRepresents:
    def a(self, sel=(), trunc=False):
        return ObjectName("a", sel, trunc)

    def b(self, sel=(), trunc=False):
        return ObjectName("b", sel, trunc)

    def test_exact_match(self):
        pair = AliasPair(self.a(("*",)), self.b())
        assert _represents(pair, pair)

    def test_truncated_member_covers_extension(self):
        stored = AliasPair(self.a(("*",), True), self.b())
        query = AliasPair(self.a(("*", "f", "*")), self.b())
        assert _represents(stored, query)

    def test_untruncated_member_does_not_cover(self):
        stored = AliasPair(self.a(("*",)), self.b())
        query = AliasPair(self.a(("*", "f")), self.b())
        assert not _represents(stored, query)

    def test_other_member_must_match(self):
        stored = AliasPair(self.a(("*",), True), self.b())
        query = AliasPair(self.a(("*", "*")), self.b(("f",)))
        assert not _represents(stored, query)

    def test_both_truncated(self):
        stored = AliasPair(self.a(("*",), True), self.b(("*",), True))
        query = AliasPair(self.a(("*", "*")), self.b(("*", "f")))
        assert _represents(stored, query)


class TestRendering:
    @pytest.fixture(scope="class")
    def solution(self):
        return analyze_source("int *p, v; int main() { p = &v; return 0; }")

    def test_report_includes_label_and_pairs(self, solution):
        node = next(n for n in solution.icfg.nodes if n.is_pointer_assignment)
        report = solution.render_node_report(node)
        assert "p = &v" in report
        assert "(*p, v)" in report

    def test_report_limit(self, solution):
        node = next(n for n in solution.icfg.nodes if n.is_pointer_assignment)
        report = solution.render_node_report(node, limit=0)
        assert report.count("(") <= 1  # only the label line
