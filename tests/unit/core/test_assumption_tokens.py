"""Token bookkeeping details in assumptions (regression guards for the
two-nonvisible join bugs the fuzzer found)."""

from repro.core import assumptions
from repro.names import AliasPair, ObjectName, nonvisible


G0 = ObjectName("g0")
G1 = ObjectName("g1")


def nv_pair(base, idx=1):
    return AliasPair(base, nonvisible(idx))


class TestNormalizeTokens:
    def test_nv2_rewritten_to_nv1(self):
        pair = nv_pair(G0, idx=2)
        normalized = assumptions.normalize_tokens(pair)
        assert normalized == nv_pair(G0, idx=1)

    def test_nv1_unchanged(self):
        pair = nv_pair(G0, idx=1)
        assert assumptions.normalize_tokens(pair) == pair

    def test_plain_pair_unchanged(self):
        pair = AliasPair(G0, G1)
        assert assumptions.normalize_tokens(pair) == pair

    def test_selectors_preserved(self):
        pair = AliasPair(G0.deref(), nonvisible(2).deref())
        normalized = assumptions.normalize_tokens(pair)
        member = normalized.nonvisible_member()
        assert member is not None and member.num_derefs == 1


class TestCombineTokenOwnership:
    def test_combined_assumption_registry_keys_recoverable(self):
        """Each pair of a combined assumption must normalize back to
        the $nv1 form used by the back-bind registry."""
        aa1 = assumptions.single(nv_pair(G0))
        aa2 = assumptions.single(nv_pair(G1))
        combined, _, _ = assumptions.combine(aa1, aa2, (), ())
        assert len(combined) == 2
        normalized = {assumptions.normalize_tokens(p) for p in combined}
        assert normalized == {nv_pair(G0), nv_pair(G1)}

    def test_first_tuple_slot_owns_nv1(self):
        aa1 = assumptions.single(nv_pair(G1))
        aa2 = assumptions.single(nv_pair(G0))
        combined, _, _ = assumptions.combine(aa1, aa2, (), ())
        first_member = combined[0].nonvisible_member()
        second_member = combined[1].nonvisible_member()
        assert first_member.base == nonvisible(1).base
        assert second_member.base == nonvisible(2).base
