"""Unit tests for the public analysis entry points."""

import pytest

from repro import analyze_program, analyze_source, build_icfg, parse_and_analyze


class TestAnalyzeSource:
    def test_basic(self):
        solution = analyze_source("int main() { return 0; }")
        assert solution.k == 3  # the paper's default
        assert solution.stats().icfg_nodes > 0

    def test_k_parameter(self):
        solution = analyze_source("int main() { return 0; }", k=1)
        assert solution.k == 1

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            analyze_source("int main() { return 0; }", k=0)

    def test_max_facts_budget(self):
        src = """
        struct node { int v; struct node *next; };
        struct node *p, *q;
        int main() { p = q; return 0; }
        """
        with pytest.raises(RuntimeError):
            analyze_source(src, k=3, max_facts=2)

    def test_timing_recorded(self):
        solution = analyze_source("int *p, v; int main() { p = &v; return 0; }")
        assert solution.analysis_seconds >= 0.0
        assert solution.stats().analysis_seconds == solution.analysis_seconds

    def test_custom_entry_proc(self):
        source = """
        int *g, v;
        int start(void) { g = &v; return 0; }
        int main() { return 0; }
        """
        solution = analyze_source(source, entry_proc="start")
        exit_start = solution.icfg.exit_of("start")
        assert solution.may_alias(exit_start)


class TestAnalyzeProgram:
    def test_reuses_prebuilt_icfg(self):
        analyzed = parse_and_analyze("int *p, v; int main() { p = &v; return 0; }")
        icfg = build_icfg(analyzed)
        solution = analyze_program(analyzed, icfg)
        assert solution.icfg is icfg

    def test_builds_icfg_when_missing(self):
        analyzed = parse_and_analyze("int main() { return 0; }")
        solution = analyze_program(analyzed)
        assert solution.icfg is not None

    def test_version_exported(self):
        import repro

        assert repro.__version__
