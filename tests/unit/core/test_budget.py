"""Budget semantics: graceful truncation, partial-solution soundness.

The contract (docs/API.md): when ``max_facts`` or ``deadline_seconds``
is exceeded the engine stops draining instead of discarding the work.
The partial store is a *subset* of the full run's facts, every fact
demoted to TAINTED — a progress report that never claims precision it
cannot certify.
"""

import pytest

from repro import BudgetExceeded, analyze_source
from repro.core.store import TAINTED
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import FIGURE1


def _scaling_source(target=100):
    return generate_program(ProgramSpec.for_target_nodes("scaling", target))


class TestBudgetExceeded:
    def test_raises_with_partial_solution_attached(self):
        with pytest.raises(BudgetExceeded) as excinfo:
            analyze_source(FIGURE1, k=3, max_facts=20)
        err = excinfo.value
        assert err.reason == "max_facts"
        assert err.solution is not None
        assert not err.solution.complete
        assert err.solution.budget.reason == "max_facts"

    def test_subclasses_runtime_error(self):
        # Pre-budget callers caught a bare RuntimeError; they must keep
        # working unchanged.
        with pytest.raises(RuntimeError):
            analyze_source(FIGURE1, k=3, max_facts=20)

    def test_on_budget_partial_returns_instead_of_raising(self):
        solution = analyze_source(FIGURE1, k=3, max_facts=20, on_budget="partial")
        assert not solution.complete
        assert solution.budget.exceeded
        assert solution.budget.reason == "max_facts"

    def test_invalid_on_budget_rejected(self):
        with pytest.raises(ValueError):
            analyze_source(FIGURE1, k=3, on_budget="explode")


class TestPartialSolutionSoundness:
    def test_partial_is_all_tainted_subset_of_full(self):
        full = analyze_source(FIGURE1, k=3)
        partial = analyze_source(FIGURE1, k=3, max_facts=20, on_budget="partial")

        full_facts = {fact for fact, _ in full.store.facts()}
        partial_facts = {fact for fact, _ in partial.store.facts()}
        assert partial_facts  # the budget stopped a run in progress
        assert partial_facts < full_facts  # strict subset: it was cut short
        assert all(clean is TAINTED for _, clean in partial.store.facts())

    def test_partial_certifies_nothing_precise(self):
        partial = analyze_source(FIGURE1, k=3, max_facts=20, on_budget="partial")
        assert partial.percent_yes() == 0.0
        assert partial.budget.demoted_facts >= 0
        stats = partial.stats_dict()
        assert stats["budget"]["exceeded"] is True
        assert stats["solution"]["percent_yes"] == 0.0

    def test_may_alias_of_partial_is_subset_per_node(self):
        full = analyze_source(FIGURE1, k=3)
        partial = analyze_source(FIGURE1, k=3, max_facts=20, on_budget="partial")
        for node in full.icfg.nodes:
            assert partial.may_alias(node) <= full.may_alias(node)


class TestDeadline:
    def test_zero_deadline_truncates_large_run(self):
        # The deadline is polled every 256 pops; this program needs
        # thousands, so a zero-second budget must trip it.
        source = _scaling_source(100)
        solution = analyze_source(
            source, k=3, deadline_seconds=0.0, on_budget="partial"
        )
        assert not solution.complete
        assert solution.budget.reason == "deadline"
        assert all(clean is TAINTED for _, clean in solution.store.facts())

    def test_generous_deadline_completes(self):
        solution = analyze_source(FIGURE1, k=3, deadline_seconds=600.0)
        assert solution.complete
        assert solution.budget.reason is None
