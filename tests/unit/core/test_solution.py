"""Unit tests for the MayAliasSolution query layer."""

import pytest

from repro import analyze_source
from repro.names import AliasPair, ObjectName


@pytest.fixture(scope="module")
def solution():
    return analyze_source(
        """
        struct node { int v; struct node *next; };
        struct node *a, *b;
        int *p, x;
        int main() {
            p = &x;
            a = malloc(8);
            b = a;
            return 0;
        }
        """,
        k=2,
    )


class TestQueries:
    def test_may_alias_accepts_node_or_id(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert solution.may_alias(exit_main) == solution.may_alias(exit_main.nid)

    def test_alias_query_positive(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert solution.alias_query(exit_main, ObjectName("p").deref(), ObjectName("x"))
        assert solution.alias_query(
            exit_main, ObjectName("a").deref(), ObjectName("b").deref()
        )

    def test_alias_query_negative(self, solution):
        exit_main = solution.icfg.exit_of("main")
        assert not solution.alias_query(
            exit_main, ObjectName("p").deref(), ObjectName("a").deref()
        )

    def test_alias_query_honors_truncated_representatives(self, solution):
        # (a->next->next...) beyond k=2 is represented by a truncated
        # name; queries at depth must still answer True.
        exit_main = solution.icfg.exit_of("main")
        deep_a = ObjectName("a").extend(("*", "next", "*", "next", "*"))
        deep_b = ObjectName("b").extend(("*", "next", "*", "next", "*"))
        assert solution.alias_query(exit_main, deep_a, deep_b)

    def test_may_alias_names(self, solution):
        exit_main = solution.icfg.exit_of("main")
        names = solution.may_alias_names(exit_main, ObjectName("p").deref())
        assert ObjectName("x") in names

    def test_program_aliases_excludes_nonvisible_by_default(self, solution):
        for pair in solution.program_aliases():
            assert not pair.has_nonvisible

    def test_node_pairs_unique(self, solution):
        pairs = list(solution.node_pairs())
        assert len(pairs) == len(set(pairs))

    def test_stats_consistent(self, solution):
        stats = solution.stats()
        assert stats.icfg_nodes == len(solution.icfg)
        assert stats.node_alias_count == len(list(solution.node_pairs()))
        assert stats.may_hold_facts >= stats.node_alias_count

    def test_render_node_report(self, solution):
        exit_main = solution.icfg.exit_of("main")
        report = solution.render_node_report(exit_main, limit=3)
        assert f"n{exit_main.nid}" in report

    def test_entry_of_main_is_alias_free(self, solution):
        entry = solution.icfg.entry_of("main")
        assert solution.may_alias(entry) == set()
