"""Unit tests for assumed-alias sets (paper §4)."""

from repro.core import assumptions
from repro.names import AliasPair, ObjectName, nonvisible


def pair(a, b):
    return AliasPair(a, b)


G1 = ObjectName("g1")
G2 = ObjectName("g2")
STAR_G1 = G1.deref()


class TestBasics:
    def test_empty(self):
        assert assumptions.EMPTY == ()

    def test_single(self):
        pa = pair(STAR_G1, G2)
        assert assumptions.single(pa) == (pa,)

    def test_has_nonvisible(self):
        clean = assumptions.single(pair(STAR_G1, G2))
        dirty = assumptions.single(pair(G1, nonvisible(1)))
        assert not assumptions.has_nonvisible(clean)
        assert assumptions.has_nonvisible(dirty)
        assert not assumptions.has_nonvisible(assumptions.EMPTY)


class TestChoose:
    def test_prefers_nonvisible(self):
        plain = assumptions.single(pair(STAR_G1, G2))
        nv = assumptions.single(pair(G1, nonvisible(1)))
        assert assumptions.choose(plain, nv) == nv
        assert assumptions.choose(nv, plain) == nv

    def test_falls_back_to_first(self):
        a = assumptions.single(pair(STAR_G1, G2))
        b = assumptions.single(pair(G1, G2))
        assert assumptions.choose(a, b) == a


class TestCombine:
    def test_same_assumption_passes_through(self):
        aa = assumptions.single(pair(G1, nonvisible(1)))
        names = (nonvisible(1).deref(),)
        result = assumptions.combine(aa, aa, names, names)
        assert result is not None
        combined, n1, n2 = result
        assert combined == aa
        assert n1 == names and n2 == names

    def test_two_nv_assumptions_renumber(self):
        aa1 = assumptions.single(pair(G1, nonvisible(1)))
        aa2 = assumptions.single(pair(G2, nonvisible(1)))
        names1 = (nonvisible(1).deref(),)
        names2 = (nonvisible(1),)
        result = assumptions.combine(aa1, aa2, names1, names2)
        assert result is not None
        combined, out1, out2 = result
        assert len(combined) == 2
        # Tokens must be distinct across the two assumptions.
        tokens = set()
        for assumed in combined:
            member = assumed.nonvisible_member()
            assert member is not None
            tokens.add(member.base)
        assert len(tokens) == 2
        # The derived names follow their owning assumption's token.
        (d1,), (d2,) = out1, out2
        assert d1.base != d2.base

    def test_combination_is_canonical_regardless_of_order(self):
        aa1 = assumptions.single(pair(G1, nonvisible(1)))
        aa2 = assumptions.single(pair(G2, nonvisible(1)))
        r12 = assumptions.combine(aa1, aa2, (), ())
        r21 = assumptions.combine(aa2, aa1, (), ())
        assert r12 is not None and r21 is not None
        assert r12[0] == r21[0]

    def test_double_assumption_inputs_rejected(self):
        aa1 = assumptions.single(pair(G1, nonvisible(1)))
        aa2 = assumptions.combine(
            aa1, assumptions.single(pair(G2, nonvisible(1))), (), ()
        )[0]
        assert assumptions.combine(aa2, aa1, (), ()) is None
