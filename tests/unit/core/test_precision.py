"""Unit tests for %YES_k precision accounting (paper §5, Figure 5)."""

import pytest

from repro import analyze_source


class TestCleanPrograms:
    def test_straightline_is_fully_precise(self):
        sol = analyze_source(
            "int *p, *q, v; int main() { q = &v; p = q; return 0; }"
        )
        assert sol.percent_yes() == 100.0

    def test_branches_alone_do_not_taint(self):
        sol = analyze_source(
            """
            int *p, a, b, c;
            int main() {
                if (c) { p = &a; } else { p = &b; }
                return 0;
            }
            """
        )
        assert sol.percent_yes() == 100.0

    def test_calls_alone_do_not_taint(self):
        sol = analyze_source(
            """
            int *g, v;
            void set(void) { g = &v; }
            int main() { set(); return 0; }
            """
        )
        assert sol.percent_yes() == 100.0

    def test_empty_solution_is_100(self):
        sol = analyze_source("int main() { return 0; }")
        assert sol.percent_yes() == 100.0


class TestApproximationSources:
    def test_type2_pairwise_combination(self):
        # (p, *u) and (z, *q) from different paths combined at p = q.
        sol = analyze_source(
            """
            int *p, **u, *q, *z, a, c;
            int main() {
                if (c) { u = &p; }
                if (c) { z = q; }
                p = q;
                return 0;
            }
            """
        )
        assert sol.percent_yes() < 100.0

    def test_type3_kept_despite_possible_kill(self):
        # (p, *q) held while (**q, *z) existed; assigning p may rebind
        # **q on every path yet the alias is preserved.
        sol = analyze_source(
            """
            int **q, *p, *z, *x, a, b;
            int main() {
                q = &p;
                p = &a;
                z = p;
                x = &b;
                p = x;
                return 0;
            }
            """
        )
        # (**q, *z) preserved at p = x although p == *q on all paths.
        assert sol.percent_yes() < 100.0

    def test_taint_propagates_to_derived_facts(self):
        # Facts derived from a tainted fact are tainted too.
        sol = analyze_source(
            """
            int *p, **u, *q, *z, *w, a, c;
            int main() {
                if (c) { u = &p; }
                if (c) { z = q; }
                p = q;
                w = *u;
                return 0;
            }
            """
        )
        yes = sol.percent_yes()
        assert 0.0 < yes < 100.0

    def test_figure1_two_nv_counted(self):
        from repro.programs.fixtures import FIGURE1

        sol = analyze_source(FIGURE1)
        # The two-nonvisible derivation is a pairwise combination →
        # counted possibly imprecise.
        assert sol.percent_yes() < 100.0

    def test_clean_rederivation_upgrades(self):
        # A fact that is derivable both through a tainted pairing and
        # through a clean direct path must count as YES.
        sol = analyze_source(
            """
            int *p, *q, v, c;
            int main() {
                q = &v;
                p = q;
                return 0;
            }
            """
        )
        assert sol.percent_yes() == 100.0


class TestBounds:
    def test_percentage_range_on_dense_program(self):
        from repro.programs import ProgramSpec, generate_program

        src = generate_program(ProgramSpec("dense", seed=7, n_functions=4))
        sol = analyze_source(src, k=2, max_facts=500_000)
        assert 0.0 <= sol.percent_yes() <= 100.0
