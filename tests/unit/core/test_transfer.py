"""Unit tests for the assignment transfer function (paper §4.5).

Each test drives the case analysis through a tiny whole program and
checks the aliases at the node *after* the assignment of interest.
"""

import pytest

from repro import analyze_source
from repro.names import DEREF, AliasPair, ObjectName


def n(text):
    stars = 0
    while text.startswith("*"):
        stars += 1
        text = text[1:]
    parts = text.split("->")
    name = ObjectName(parts[0])
    for part in parts[1:]:
        name = name.deref().field(part)
    for _ in range(stars):
        name = name.deref()
    return name


def pair(a, b):
    return AliasPair(n(a), n(b))


def aliases_after(source, marker, k=3):
    """may_alias at the assignment node whose label contains marker."""
    sol = analyze_source(source, k=k)
    for node in sol.icfg.nodes:
        if node.is_pointer_assignment and marker in node.label():
            return sol.may_alias(node), sol
    raise AssertionError(f"no assignment matching {marker!r}")


class TestIntroduction:
    def test_assign_introduces_star_pair(self):
        pairs, _ = aliases_after(
            "int *p, *q, v; int main() { q = &v; p = q; return 0; }", "p = q"
        )
        assert pair("*p", "*q") in pairs

    def test_address_of_introduces_direct_alias(self):
        pairs, _ = aliases_after(
            "int *p, v; int main() { p = &v; return 0; }", "p = &v"
        )
        assert pair("*p", "v") in pairs

    def test_self_extension_excluded(self):
        # p = p->next must NOT create (*p, *(p->next)).
        src = """
        struct node { int v; struct node *next; };
        struct node *p;
        int main() { p = p->next; return 0; }
        """
        pairs, _ = aliases_after(src, "p = p->next")
        assert pair("*p", "*p->next") not in pairs

    def test_null_introduces_nothing(self):
        pairs, _ = aliases_after(
            "int *p, v; int main() { p = NULL; return 0; }", "p = NULL"
        )
        assert not pairs

    def test_malloc_introduces_nothing(self):
        pairs, _ = aliases_after(
            "int *p; int main() { p = malloc(4); return 0; }", "p = malloc"
        )
        assert not pairs

    def test_implicit_chain_extensions(self):
        src = """
        struct node { int v; struct node *next; };
        struct node *p, *q;
        int main() { p = q; return 0; }
        """
        pairs, _ = aliases_after(src, "p = q", k=2)
        assert pair("*p", "*q") in pairs
        assert pair("p->next", "q->next") in pairs
        assert pair("p->v", "q->v") in pairs


class TestKill:
    def test_strong_update_kills_old_alias(self):
        src = """
        int *p, a, b;
        int main() { p = &a; p = &b; return 0; }
        """
        pairs, _ = aliases_after(src, "p = &b")
        assert pair("*p", "b") in pairs
        assert pair("*p", "a") not in pairs

    def test_null_kills(self):
        src = "int *p, a; int main() { p = &a; p = NULL; return 0; }"
        pairs, _ = aliases_after(src, "p = NULL")
        assert pair("*p", "a") not in pairs

    def test_unrelated_alias_preserved(self):
        src = """
        int *p, *q, a, b;
        int main() { q = &a; p = &b; return 0; }
        """
        pairs, _ = aliases_after(src, "p = &b")
        assert pair("*q", "a") in pairs

    def test_weak_update_through_array_preserves(self):
        src = """
        int *arr[4];
        int a, b;
        int main() { arr[0] = &a; arr[1] = &b; return 0; }
        """
        pairs, _ = aliases_after(src, "= &b")
        # The aggregate assignment may not kill the element alias.
        assert pair("*arr", "a") in pairs
        assert pair("*arr", "b") in pairs

    def test_location_alias_of_lhs_survives(self):
        # Case 3.i: (p, *u) is a location alias, unaffected by p = q.
        src = """
        int *p, **u, *q, a;
        int main() { u = &p; q = &a; p = q; return 0; }
        """
        pairs, _ = aliases_after(src, "p = q")
        assert pair("p", "*u") in pairs


class TestCase2:
    def test_alias_of_star_q_transfers(self):
        # Case 2.i: (*q, z) at node gives (*p, z) after p = q.
        src = """
        int *p, *q, v;
        int main() { q = &v; p = q; return 0; }
        """
        pairs, _ = aliases_after(src, "p = q")
        assert pair("*q", "v") in pairs  # preserved (case 1)
        assert pair("*p", "v") in pairs  # transferred (case 2.i)

    def test_deep_alias_transfers(self):
        # (**q, z) gives (**p, z) after p = q.
        src = """
        int **p, **q, *r, v;
        int main() { r = &v; q = &r; p = q; return 0; }
        """
        pairs, _ = aliases_after(src, "p = q")
        assert pair("**p", "v") in pairs
        assert pair("**p", "*r") in pairs

    def test_case_2ii_no_self_info(self):
        # p = p->next with (*(p->next), z): z's side rooted at p is
        # rebound, so nothing useful should be concluded about it.
        src = """
        struct node { int v; struct node *next; };
        struct node *p, *z;
        int main() { z = p->next; p = p->next; return 0; }
        """
        pairs, _ = aliases_after(src, "p = p->next")
        # (*z, *p) survives as the new p equals old p->next ≡ z.
        assert pair("*z", "*p") in pairs


class TestCase3:
    def test_alias_of_lhs_gives_rhs_alias(self):
        # Case 3.i: (p, *u) then p = &a gives (*(*u), a) i.e. (**u, a).
        src = """
        int *p, **u, a;
        int main() { u = &p; p = &a; return 0; }
        """
        pairs, _ = aliases_after(src, "p = &a")
        assert pair("**u", "a") in pairs

    def test_case_3ii_derived_chain_survives(self):
        # (p, *u) also means (*p, **u) holds after p = q.
        src = """
        int *p, **u, *q, a;
        int main() { u = &p; q = &a; p = q; return 0; }
        """
        pairs, _ = aliases_after(src, "p = q")
        assert pair("*p", "**u") in pairs

    def test_assignment_through_pointer(self):
        # *u = q where (p, *u): assigning through u writes p.
        src = """
        int *p, **u, *q, a;
        int main() { u = &p; q = &a; *u = q; return 0; }
        """
        pairs, _ = aliases_after(src, "*u = q")
        assert pair("**u", "a") in pairs
        assert pair("*p", "a") in pairs  # via the location alias of *u


class TestTaintAccounting:
    def test_clean_program_is_100_percent(self):
        src = """
        int *p, *q, v;
        int main() { q = &v; p = q; return 0; }
        """
        _, sol = aliases_after(src, "p = q")
        assert sol.percent_yes() == 100.0

    def test_pairwise_combination_taints(self):
        # Approximation 2: (z, *q) and (*u, p) combine at p = q.
        src = """
        int *p, **u, *q, *z, a;
        int main() {
            if (a) { u = &p; }
            if (a) { z = q; }
            p = q;
            return 0;
        }
        """
        _, sol = aliases_after(src, "p = q")
        assert sol.percent_yes() < 100.0
