"""Call-graph condensation: SCCs, waves and the bottom-up order on
hand-built programs (the property suite in
``tests/property/test_summaries.py`` covers arbitrary digraphs)."""

from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.summaries.callgraph import build_call_graph, call_edges, tarjan_sccs

CHAIN = """
int *g; int x;
void leaf(void) { g = &x; }
void mid(void) { leaf(); }
int main() { mid(); return 0; }
"""

DIAMOND = """
int *g; int x;
void leaf(void) { g = &x; }
void left(void) { leaf(); }
void right(void) { leaf(); }
int main() { left(); right(); return 0; }
"""

SELF_RECURSIVE = """
int *g; int x;
void rec(int n) { g = &x; if (n > 0) { rec(n - 1); } }
int main() { rec(3); return 0; }
"""

MUTUAL = """
int *g; int x;
void even(int n);
void odd(int n) { if (n > 0) { even(n - 1); } }
void even(int n) { g = &x; if (n > 0) { odd(n - 1); } }
int main() { even(4); return 0; }
"""


def _graph(source):
    analyzed = parse_and_analyze(source)
    return build_call_graph(build_icfg(analyzed))


class TestCallEdges:
    def test_chain_edges(self):
        analyzed = parse_and_analyze(CHAIN)
        edges = call_edges(build_icfg(analyzed))
        assert edges == {"leaf": (), "mid": ("leaf",), "main": ("mid",)}

    def test_external_callees_are_absent(self):
        analyzed = parse_and_analyze(
            "struct node { int val; struct node *next; };\n"
            "int main() { struct node *p; p = malloc(8); return 0; }\n"
        )
        edges = call_edges(build_icfg(analyzed))
        assert edges == {"main": ()}


class TestTarjan:
    def test_chain_is_callees_first(self):
        graph = _graph(CHAIN)
        assert graph.sccs == (("leaf",), ("mid",), ("main",))
        assert graph.depth == {"leaf": 0, "mid": 1, "main": 2}
        assert graph.waves == (("leaf",), ("mid",), ("main",))

    def test_diamond_ties_in_one_wave(self):
        graph = _graph(DIAMOND)
        assert graph.depth["leaf"] == 0
        assert graph.depth["left"] == graph.depth["right"] == 1
        assert graph.depth["main"] == 2
        assert set(graph.waves[1]) == {"left", "right"}

    def test_self_recursion_is_a_singleton_cycle(self):
        graph = _graph(SELF_RECURSIVE)
        assert ("rec",) in graph.sccs
        # rec calls itself: the component has the self-edge.
        assert "rec" in graph.edges["rec"]
        assert graph.depth["main"] == graph.depth["rec"] + 1

    def test_mutual_recursion_shares_a_component(self):
        graph = _graph(MUTUAL)
        assert graph.scc_of["even"] == graph.scc_of["odd"]
        assert graph.depth["even"] == graph.depth["odd"]
        assert graph.depth["main"] == graph.depth["even"] + 1
        component = graph.sccs[graph.scc_of["even"]]
        assert set(component) == {"even", "odd"}

    def test_order_key_is_bottom_up(self):
        for source in (CHAIN, DIAMOND, SELF_RECURSIVE, MUTUAL):
            graph = _graph(source)
            ordered = sorted(graph.procs, key=graph.order_key)
            assert ordered[-1] == "main"
            for proc, callees in graph.edges.items():
                for callee in callees:
                    if graph.scc_of[proc] != graph.scc_of[callee]:
                        assert ordered.index(callee) < ordered.index(proc)

    def test_tarjan_on_raw_graph_with_cycle(self):
        sccs = tarjan_sccs(
            ["a", "b", "c", "d"],
            {"a": ["b"], "b": ["c"], "c": ["b", "d"], "d": []},
        )
        assert sccs == [("d",), ("b", "c"), ("a",)]
