"""The summary solver's unit surfaces: portable packed-state tokens,
the inputs digest, and the paper-facing ``procedure_summary`` view."""

import pytest

from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.summaries.solver import ProcSolver, SummaryAnalysis

SOURCE = """
int *g; int x;
void helper(void) { g = &x; }
int main() { helper(); return 0; }
"""

#: Same program with a statement added to *main* only: every node id
#: shifts, but helper's tokens (and therefore its portable state) must
#: still resolve.
SOURCE_MAIN_EDITED = SOURCE.replace(
    "{ helper(); return 0; }", "{ helper(); g = g; return 0; }"
)


def _analysis(source, k=2):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    analysis = SummaryAnalysis(analyzed, icfg, k=k)
    analysis.run()
    return analysis


class TestPortableState:
    def test_round_trip_restores_identical_facts(self):
        analysis = _analysis(SOURCE)
        solver = analysis.solvers["helper"]
        solver.ensure_live()
        before = dict(solver.kernel.store.facts())
        portable = solver.state_portable()

        fresh = ProcSolver(
            "helper", analysis.analyzed, analysis.icfg, analysis.k, None
        )
        fresh.adopt_portable(portable)
        fresh.ensure_live()
        assert dict(fresh.kernel.store.facts()) == before

    def test_tokens_survive_renumbering_by_an_edit_elsewhere(self):
        # Export helper's state from the original program, import it
        # into the *edited* program (main gained a statement, all node
        # ids moved).  The stable tokens must land the facts on
        # helper's corresponding nodes.
        analysis = _analysis(SOURCE)
        solver = analysis.solvers["helper"]
        solver.ensure_live()
        portable = solver.state_portable()
        by_token = {}
        for (nid, assumption, pair), clean in solver.kernel.store.facts():
            token = solver._token_of.get(nid)
            if token is not None:
                by_token.setdefault(token, set()).add((assumption, pair, clean))

        edited = parse_and_analyze(SOURCE_MAIN_EDITED)
        edited_icfg = build_icfg(edited)
        fresh = ProcSolver("helper", edited, edited_icfg, 2, None)
        fresh.adopt_portable(portable)
        fresh.ensure_live()
        for (nid, assumption, pair), clean in fresh.kernel.store.facts():
            token = fresh._token_of.get(nid)
            assert token is not None
            assert (assumption, pair, clean) in by_token[token]

    def test_foreign_byteorder_is_rejected(self):
        analysis = _analysis(SOURCE)
        solver = analysis.solvers["helper"]
        solver.ensure_live()
        portable = solver.state_portable()
        portable["packed"] = dict(portable["packed"])
        portable["packed"]["byteorder"] = (
            "big" if portable["packed"]["byteorder"] == "little" else "little"
        )
        fresh = ProcSolver(
            "helper", analysis.analyzed, analysis.icfg, analysis.k, None
        )
        with pytest.raises(ValueError):
            fresh.adopt_portable(portable)


class TestInputsDigest:
    def test_digest_orders_and_separates_deltas(self):
        analyzed = parse_and_analyze(SOURCE)
        icfg = build_icfg(analyzed)
        a = ProcSolver("helper", analyzed, icfg, 2, None)
        b = ProcSolver("helper", analyzed, icfg, 2, None)
        assert a.inputs_digest == b.inputs_digest
        a.advance_digest({"seeds": [], "mirrors": {}})
        assert a.inputs_digest != b.inputs_digest
        b.advance_digest({"seeds": [], "mirrors": {}})
        assert a.inputs_digest == b.inputs_digest
        # The *sequence* is keyed, not the accumulated set.
        a.advance_digest({"retaint": 1, "seeds": [], "mirrors": {}})
        b.advance_digest({"seeds": [], "mirrors": {}})
        assert a.inputs_digest != b.inputs_digest


class TestProcedureSummary:
    def test_helper_summary_shows_its_exit_facts(self):
        analysis = _analysis(SOURCE)
        summary = analysis.procedure_summary("helper")
        # helper unconditionally establishes (*g, x): it must appear
        # under the empty entry assumption.
        unconditional = summary.get("[]", [])
        rendered = [str(pair) for pair, _clean in unconditional]
        assert any("g" in text and "x" in text for text in rendered)

    def test_every_procedure_has_a_summary(self):
        analysis = _analysis(SOURCE)
        for proc in analysis.callgraph.procs:
            assert isinstance(analysis.procedure_summary(proc), dict)
