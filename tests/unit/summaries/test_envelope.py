"""Per-procedure cache keys: what invalidates one procedure's entries
and — just as load-bearing — what must *not*."""

from repro.cache.keys import ENGINE_CODE_VERSION
from repro.frontend.semantics import parse_and_analyze
from repro.summaries.envelope import (
    SUMMARY_ENTRY_SCHEMA,
    load_summary_envelope,
    make_summary_envelope,
    proc_environment_text,
    proc_program_texts,
    summary_entry_key,
    summary_proc_key,
)

SOURCE = """
int *g; int x;
void helper(void) { g = &x; }
int main() { helper(); return 0; }
"""

#: helper's body edited; main untouched.
SOURCE_HELPER_EDITED = SOURCE.replace("{ g = &x; }", "{ g = &x; g = g; }")

#: a global added: the shared environment changed for *everyone*.
SOURCE_NEW_GLOBAL = SOURCE.replace("int *g; int x;", "int *g, *h; int x;")


def _keys(source, k=3):
    analyzed = parse_and_analyze(source)
    env = proc_environment_text(analyzed)
    texts = proc_program_texts(analyzed)
    return {proc: summary_proc_key(env, text, k) for proc, text in texts.items()}


class TestProcKeys:
    def test_environment_text_has_signatures_not_bodies(self):
        analyzed = parse_and_analyze(SOURCE)
        env = proc_environment_text(analyzed)
        assert "helper" in env and "main" in env
        assert "&x" not in env  # no statement bodies

    def test_editing_one_body_changes_only_that_key(self):
        base = _keys(SOURCE)
        edited = _keys(SOURCE_HELPER_EDITED)
        assert base["helper"] != edited["helper"]
        assert base["main"] == edited["main"]

    def test_environment_change_invalidates_every_key(self):
        base = _keys(SOURCE)
        widened = _keys(SOURCE_NEW_GLOBAL)
        assert base["helper"] != widened["helper"]
        assert base["main"] != widened["main"]

    def test_k_and_code_version_change_the_key(self):
        analyzed = parse_and_analyze(SOURCE)
        env = proc_environment_text(analyzed)
        text = proc_program_texts(analyzed)["helper"]
        assert summary_proc_key(env, text, 2) != summary_proc_key(env, text, 3)
        assert summary_proc_key(env, text, 3) != summary_proc_key(
            env, text, 3, code_version=ENGINE_CODE_VERSION + "-next"
        )

    def test_entry_key_tracks_the_inputs_digest(self):
        assert summary_entry_key("proc", "d1") != summary_entry_key("proc", "d2")
        assert summary_entry_key("p1", "d") != summary_entry_key("p2", "d")
        assert summary_entry_key("p", "d") == summary_entry_key("p", "d")


class TestEnvelopeRoundTrip:
    def _envelope(self):
        state = {"packed": {"count": 0}, "stats": {"worklist_pops": 1}}
        harvest = {"seeds": {}, "exits": []}
        return make_summary_envelope(
            "key123", "helper", "prockey", "digest", state, harvest
        )

    def test_well_formed_envelope_loads(self):
        envelope = self._envelope()
        assert envelope["schema"] == SUMMARY_ENTRY_SCHEMA
        loaded = load_summary_envelope(envelope)
        assert loaded is not None
        state, harvest = loaded
        assert state["packed"]["count"] == 0
        assert harvest == {"seeds": {}, "exits": []}

    def test_wrong_schema_is_a_miss(self):
        envelope = self._envelope()
        envelope["schema"] = "repro-cache-entry/1"
        assert load_summary_envelope(envelope) is None

    def test_stale_code_version_is_a_miss(self):
        envelope = self._envelope()
        envelope["inputs"]["code_version"] = "lr-engine/0.0"
        assert load_summary_envelope(envelope) is None

    def test_malformed_envelope_is_a_miss(self):
        assert load_summary_envelope({}) is None
        assert load_summary_envelope({"schema": SUMMARY_ENTRY_SCHEMA}) is None
        envelope = self._envelope()
        envelope["state"] = "not a dict"
        assert load_summary_envelope(envelope) is None
