"""The content-addressed solution cache: keys, store, cached solving.

The contract under test (docs/PARALLEL.md):

* the key is *content*-addressed — whitespace and comments don't
  change it, while any of (IR, k, engine config, code version) does;
* a hit reproduces the cold solution exactly (facts, taints, engine
  counters) — only wall-clock fields may differ;
* corruption of any kind degrades to a miss, never to a wrong answer;
* only complete solutions are ever stored.
"""

import json

import pytest

from repro.cache.keys import (
    ENGINE_CODE_VERSION,
    canonical_ir_hash,
    engine_config_dict,
    entry_key,
)
from repro.cache.solve import (
    STATUS_HIT,
    STATUS_MISS,
    STATUS_OFF,
    STATUS_UNCACHEABLE,
    solve_with_cache,
    verify_cache,
)
from repro.cache.store import SolutionCache
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg

pytestmark = pytest.mark.parallel

SOURCE = """
int *p; int *q; int x;
void main() {
    p = &x;
    q = p;
}
"""

#: Same program, reformatted and commented — must hit the same entry.
SOURCE_REFORMATTED = """
int *p;
int *q;   /* the second pointer */
int x;
void main() {
    p = &x;    /* p points at x */
    q = p;
}
"""

#: One statement changed — must miss.
SOURCE_CHANGED = """
int *p; int *q; int x;
void main() {
    p = &x;
    q = &x;
}
"""


def _key_for(source: str, k: int = 3, **engine_kwargs) -> str:
    analyzed = parse_and_analyze(source)
    return entry_key(
        canonical_ir_hash(analyzed), k, engine_config_dict(**engine_kwargs)
    )


class TestKeys:
    def test_whitespace_and_comments_do_not_change_the_key(self):
        assert _key_for(SOURCE) == _key_for(SOURCE_REFORMATTED)

    def test_one_statement_change_changes_the_key(self):
        assert _key_for(SOURCE) != _key_for(SOURCE_CHANGED)

    def test_k_changes_the_key(self):
        assert _key_for(SOURCE, k=2) != _key_for(SOURCE, k=3)

    def test_engine_config_changes_the_key(self):
        assert _key_for(SOURCE) != _key_for(SOURCE, max_facts=100)
        assert _key_for(SOURCE) != _key_for(SOURCE, dedup=False)

    def test_code_version_changes_the_key(self):
        analyzed = parse_and_analyze(SOURCE)
        ir_hash = canonical_ir_hash(analyzed)
        config = engine_config_dict()
        assert entry_key(ir_hash, 3, config) != entry_key(
            ir_hash, 3, config, code_version=ENGINE_CODE_VERSION + "-next"
        )


def _solve(source: str, cache, k: int = 3, **kwargs):
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    return solve_with_cache(analyzed, icfg, k=k, cache=cache, **kwargs)


class TestCachedSolving:
    def test_no_cache_is_off(self):
        _solution, status = _solve(SOURCE, cache=None)
        assert status == STATUS_OFF

    def test_miss_then_hit_reproduces_the_solution(self, tmp_path):
        cache = SolutionCache(tmp_path)
        cold, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS
        warm, status = _solve(SOURCE, cache)
        assert status == STATUS_HIT
        assert dict(cold.store.facts()) == dict(warm.store.facts())
        assert cold.engine.as_dict() == warm.engine.as_dict()
        assert cold.percent_yes() == warm.percent_yes()
        assert warm.complete
        assert cache.counters.hits == 1 and cache.counters.misses == 1

    def test_reformatted_source_hits(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        _warm, status = _solve(SOURCE_REFORMATTED, cache)
        assert status == STATUS_HIT

    def test_changed_source_and_changed_k_miss(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        _s, status = _solve(SOURCE_CHANGED, cache)
        assert status == STATUS_MISS
        _s, status = _solve(SOURCE, cache, k=2)
        assert status == STATUS_MISS

    def test_partial_solution_is_not_cached(self, tmp_path):
        cache = SolutionCache(tmp_path)
        solution, status = _solve(
            SOURCE, cache, max_facts=1, on_budget="partial"
        )
        assert status == STATUS_UNCACHEABLE
        assert not solution.complete
        assert cache.entry_count() == 0
        # And the budget-degraded run never poisons a later full solve.
        _s, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS

    def test_hit_rebuild_preserves_query_surface(self, tmp_path):
        cache = SolutionCache(tmp_path)
        cold, _ = _solve(SOURCE, cache)
        warm, _ = _solve(SOURCE, cache)
        icfg = warm.icfg
        for node in icfg.nodes:
            assert {str(p) for p in cold.may_alias(node)} == {
                str(p) for p in warm.may_alias(node)
            }
        assert {str(p) for p in cold.program_aliases()} == {
            str(p) for p in warm.program_aliases()
        }


#: Wide multi-procedure program for the per-procedure invalidation
#: test: several independent helpers over disjoint global pointers, so
#: an edit to one cannot disturb another's summary.
WIDE_SOURCE = """
int *p0, *p1, *p2, *p3, *p4, *p5, *p6, *p7, *p8, *p9, *p10, *p11;
int x0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11;
int s;

void f0(void) { p0 = &x0; p0 = p0; }
void f1(void) { p1 = &x1; p1 = p1; }
void f2(void) { p2 = &x2; p2 = p2; }
void f3(void) { p3 = &x3; p3 = p3; }
void f4(void) { p4 = &x4; p4 = p4; }
void f5(void) { p5 = &x5; p5 = p5; }
void f6(void) { p6 = &x6; p6 = p6; }
void f7(void) { p7 = &x7; p7 = p7; }
void f8(void) { p8 = &x8; p8 = p8; }
void f9(void) { p9 = &x9; p9 = p9; }
void f10(void) { p10 = &x10; p10 = p10; }
void f11(void) { p11 = &x11; p11 = p11; }

int main() {
    f0();
    f1();
    f2();
    f3();
    f4();
    f5();
    f6();
    f7();
    f8();
    f9();
    f10();
    f11();
    return 0;
}
"""

#: Same program with one *alias-neutral* edit inside f3 (a scalar
#: increment): f3's body hash changes, its may-hold summary does not,
#: so no caller or sibling has any reason to re-drain.
WIDE_SOURCE_EDITED = WIDE_SOURCE.replace(
    "void f3(void) { p3 = &x3; p3 = p3; }",
    "void f3(void) { p3 = &x3; p3 = p3; s = s + 1; }",
)


class TestPerProcedureInvalidation:
    """PR 7: the summary engine's per-procedure envelopes make cache
    invalidation *procedural* — editing one function re-drains that
    function, not the program."""

    def test_single_function_edit_misses_only_that_procedure(self, tmp_path):
        from repro.summaries.envelope import SUMMARY_ENTRY_SCHEMA

        cache = SolutionCache(tmp_path)
        cold, status = _solve(WIDE_SOURCE, cache, engine="summary")
        assert status == STATUS_MISS
        assert cold.complete

        before = {path.name for path in cache.iter_paths()}
        snapshot = cache.counters.snapshot()
        edited, status = _solve(WIDE_SOURCE_EDITED, cache, engine="summary")
        assert status == STATUS_MISS  # the whole-program key must miss
        assert edited.complete

        # ISSUE acceptance: >= 90% of per-procedure lookups still hit.
        delta = cache.counters.since(snapshot)
        assert delta.hits > 0
        assert delta.hits / (delta.hits + delta.misses) >= 0.9

        # Every envelope written by the edited run belongs to f3 (or is
        # the new whole-program entry) — no other procedure re-drained
        # into the store.
        fresh_procs = set()
        for path in cache.iter_paths():
            if path.name in before:
                continue
            envelope = json.loads(path.read_text())
            if envelope.get("schema") == SUMMARY_ENTRY_SCHEMA:
                fresh_procs.add(envelope["proc"])
        assert fresh_procs == {"f3"}

    def test_warm_replay_matches_a_cache_off_solve(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(WIDE_SOURCE, cache, engine="summary")
        replayed, _ = _solve(WIDE_SOURCE_EDITED, cache, engine="summary")
        fresh, status = _solve(WIDE_SOURCE_EDITED, cache=None, engine="summary")
        assert status == STATUS_OFF
        assert dict(replayed.store.facts()) == dict(fresh.store.facts())


class TestCorruptionRecovery:
    def _prime(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        (path,) = list(cache.iter_paths())
        return cache, path

    def test_truncated_entry_recovers(self, tmp_path):
        cache, path = self._prime(tmp_path)
        path.write_text(path.read_text()[: 50])
        _s, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS
        assert cache.counters.corrupt_dropped == 1
        # The fresh solve re-populated the entry.
        _s, status = _solve(SOURCE, cache)
        assert status == STATUS_HIT

    def test_garbage_entry_recovers(self, tmp_path):
        cache, path = self._prime(tmp_path)
        path.write_text("not json at all {{{")
        _s, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS
        assert cache.counters.corrupt_dropped == 1

    def test_wrong_schema_entry_recovers(self, tmp_path):
        cache, path = self._prime(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema"] = "something-else/9"
        path.write_text(json.dumps(envelope))
        _s, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS

    def test_drifted_solution_document_recovers(self, tmp_path):
        # Well-formed envelope whose solution document no longer parses
        # (simulates schema drift between code versions).
        cache, path = self._prime(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["solution"]["packed"] = {"bogus": True}
        path.write_text(json.dumps(envelope))
        solution, status = _solve(SOURCE, cache)
        assert status == STATUS_MISS
        assert solution.complete


class TestStoreAdministration:
    def test_eviction_keeps_newest(self, tmp_path):
        import os

        cache = SolutionCache(tmp_path, max_entries=2)
        third = SOURCE.replace("q = p;", "q = p; p = q;")
        sources = [SOURCE, SOURCE_CHANGED, third]
        stamped: set = set()
        for stamp, source in enumerate(sources):
            _solve(source, cache)
            # Give each new entry a distinct, increasing mtime so the
            # eviction order is deterministic even on filesystems with
            # coarse timestamps.
            for path in cache.iter_paths():
                if path not in stamped:
                    os.utime(path, (stamp, stamp))
                    stamped.add(path)
        assert cache.entry_count() == 2
        assert cache.counters.evictions == 1
        # The oldest (first) entry was evicted.
        _s, status = _solve(sources[0], cache)
        assert status == STATUS_MISS

    def test_clear_and_stats(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        stats = cache.stats_dict()
        assert stats["schema"] == "repro-cache/1"
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert cache.clear() == 1
        assert cache.entry_count() == 0


class TestVerify:
    def test_clean_cache_verifies(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        _solve(SOURCE_CHANGED, cache)
        checked, problems = verify_cache(cache)
        assert checked == 2
        assert problems == []

    def test_sample_bounds_the_work(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        _solve(SOURCE_CHANGED, cache)
        checked, problems = verify_cache(cache, sample=1)
        assert checked == 1
        assert problems == []

    def test_tampered_entry_is_reported(self, tmp_path):
        import base64

        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        (path,) = list(cache.iter_paths())
        envelope = json.loads(path.read_text())
        # Flip one fact's taint bit inside the packed columns: the
        # stored solution no longer matches a fresh re-solve.
        packed = envelope["solution"]["packed"]
        taint = bytearray(base64.b64decode(packed["taint"]))
        taint[0] ^= 1
        packed["taint"] = base64.b64encode(bytes(taint)).decode("ascii")
        path.write_text(json.dumps(envelope))
        checked, problems = verify_cache(cache)
        assert checked == 1
        assert len(problems) == 1
        assert "drift" in problems[0]

    def test_stale_code_version_is_reported(self, tmp_path):
        cache = SolutionCache(tmp_path)
        _solve(SOURCE, cache)
        (path,) = list(cache.iter_paths())
        envelope = json.loads(path.read_text())
        envelope["inputs"]["code_version"] = "lr-engine/0.0"
        path.write_text(json.dumps(envelope))
        checked, problems = verify_cache(cache)
        assert checked == 1
        assert "stale code version" in problems[0]
