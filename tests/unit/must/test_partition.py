"""White-box tests for the must-alias union-find and partitions:
path compression, union-by-rank, the one-address-per-class invariant,
kill/copy independence, and the intersection join."""

import pytest

from repro.icfg.ir import AddrOf
from repro.must import MustPartition, UnionFind, intersect_all
from repro.names.object_names import ObjectName


def name(base, *sels):
    return ObjectName(base, tuple(sels))


P, Q, R, S = (name(b) for b in "pqrs")
AX = AddrOf(name("x"))
AY = AddrOf(name("y"))


class TestUnionFind:
    def test_make_and_find(self):
        uf = UnionFind()
        ids = [uf.make() for _ in range(3)]
        assert ids == [0, 1, 2]
        assert [uf.find(i) for i in ids] == ids

    def test_union_merges_and_is_idempotent(self):
        uf = UnionFind()
        a, b, c = uf.make(), uf.make(), uf.make()
        root = uf.union(a, b)
        assert uf.find(a) == uf.find(b) == root
        assert uf.union(a, b) == root  # already joined
        assert uf.find(c) != root

    def test_union_by_rank(self):
        uf = UnionFind()
        a, b, c, d = (uf.make() for _ in range(4))
        uf.union(a, b)  # rank-1 tree rooted at a
        uf.union(c, d)  # rank-1 tree rooted at c
        root = uf.union(a, c)  # equal ranks: winner's rank bumps to 2
        assert uf.rank[root] == 2
        e = uf.make()
        assert uf.union(root, e) == root  # lower rank attaches below

    def test_find_fully_compresses_walked_chain(self):
        uf = UnionFind()
        for _ in range(5):
            uf.make()
        # Hand-build the chain 4 -> 3 -> 2 -> 1 -> 0.
        uf.parent = [0, 0, 1, 2, 3]
        assert uf.find(4) == 0
        # Every node on the walked chain now points straight at the root.
        assert uf.parent == [0, 0, 0, 0, 0]


class TestMustPartition:
    def test_empty_and_singletons_carry_no_facts(self):
        part = MustPartition()
        part.ensure(P)
        part.ensure(AX)
        assert part.canonical() == frozenset()
        assert part.fact_count() == 0
        assert part.classes() == []
        assert part == MustPartition()

    def test_merge_equivalence_and_members(self):
        part = MustPartition()
        part.merge(P, Q)
        part.merge(Q, AX)
        assert part.equivalent(P, Q)
        assert part.equivalent(P, AX)
        assert not part.equivalent(P, R)
        assert set(part.members_of(P)) == {P, Q, AX}
        assert part.addr_target(P) == name("x")
        assert part.addr_target(R) is None
        assert part.fact_count() == 3

    def test_merge_rejects_two_distinct_addresses(self):
        part = MustPartition()
        part.merge(P, AX)
        part.merge(Q, AY)
        with pytest.raises(AssertionError):
            part.merge(P, Q)  # would claim &x == &y

    def test_kill_removes_only_the_token(self):
        part = MustPartition()
        part.merge(P, Q)
        part.merge(Q, R)
        part.kill(Q)
        assert Q not in part
        assert part.equivalent(P, R)
        assert set(part.members_of(P)) == {P, R}

    def test_kill_to_singleton_means_no_facts(self):
        part = MustPartition()
        part.merge(P, Q)
        part.kill(Q)
        assert part.canonical() == frozenset()

    def test_copy_is_independent(self):
        part = MustPartition()
        part.merge(P, Q)
        dup = part.copy()
        assert dup == part
        dup.merge(P, R)
        assert not part.equivalent(P, R)
        part.kill(P)
        assert dup.equivalent(P, Q)

    def test_intersect_keeps_only_common_facts(self):
        left = MustPartition()
        left.merge(P, Q)
        left.merge(Q, R)  # {p, q, r}
        right = MustPartition()
        right.merge(P, Q)  # {p, q}; r untracked
        joined = left.intersect(right)
        assert joined.equivalent(P, Q)
        assert not joined.equivalent(P, R)
        assert R not in joined

    def test_intersect_splits_on_either_sides_partition(self):
        left = MustPartition()
        left.merge(P, Q)
        left.merge(R, S)
        right = MustPartition()
        right.merge(P, Q)
        right.merge(Q, R)
        right.ensure(S)
        joined = left.intersect(right)
        assert joined.equivalent(P, Q)
        assert not joined.equivalent(Q, R)  # left keeps them apart
        assert not joined.equivalent(R, S)  # right keeps them apart

    def test_intersect_preserves_address_anchor(self):
        left = MustPartition()
        left.merge(P, AX)
        right = MustPartition()
        right.merge(P, AX)
        right.merge(P, Q)
        joined = left.intersect(right)
        assert joined.addr_target(P) == name("x")
        assert not joined.equivalent(P, Q)

    def test_intersect_all_single_input_is_a_copy(self):
        part = MustPartition()
        part.merge(P, Q)
        out = intersect_all([part])
        assert out == part
        out.merge(P, R)
        assert not part.equivalent(P, R)

    def test_intersect_all_folds(self):
        parts = []
        for extra in (R, S):
            part = MustPartition()
            part.merge(P, Q)
            part.merge(Q, extra)
            parts.append(part)
        joined = intersect_all(parts)
        assert joined.equivalent(P, Q)
        assert not joined.equivalent(P, R)
        assert not joined.equivalent(P, S)
