"""Behavioral tests for the must-alias engine on targeted programs:
atomic seeding rules, intersection at joins, kills, strong updates
through must-grounded derefs, interprocedural binding, the interval
wrapper, the cache envelope roundtrip, and the dynamic oracle."""

import pytest

from repro.cache.store import SolutionCache
from repro.core.kernel import KernelAnalysis
from repro.core.solution import MayAliasSolution
from repro.frontend import parse_and_analyze
from repro.icfg import IcfgBuilder
from repro.must import (
    IntervalSolution,
    solve_must,
    solve_must_with_cache,
    validate_must_dynamic,
)
from repro.names.context import NameContext
from repro.names.object_names import DEREF, ObjectName
from repro.programs.fixtures import ALL_FIXTURES


def nm(base, *sels):
    return ObjectName(base, tuple(sels))


def solved(source, k=3):
    analyzed = parse_and_analyze(source)
    builder = IcfgBuilder(analyzed)
    icfg = builder.build()
    return analyzed, builder, icfg, solve_must(analyzed, icfg, k=k)


DEMO = (
    "int x; int *p; int **h;"
    " int main() { h = &p; p = &x; *h = 0; return 0; }"
)


class TestAtomicRules:
    def test_address_of_seeds_deref_fact(self):
        _, _, icfg, sol = solved("int x; int *p; int main() { p = &x; return 0; }")
        exit_node = icfg.exit_of("main")
        assert sol.must_alias(exit_node, nm("p", DEREF), nm("x"))
        assert sol.must_resolve(exit_node, nm("p", DEREF)) == nm("x")

    def test_copy_propagates_class(self):
        _, _, icfg, sol = solved(
            "int x; int *p; int *q;"
            " int main() { p = &x; q = p; return 0; }"
        )
        exit_node = icfg.exit_of("main")
        assert sol.must_alias(exit_node, nm("q", DEREF), nm("p", DEREF))
        assert sol.must_alias(exit_node, nm("q", DEREF), nm("x"))

    def test_identical_names_trivially_must_alias(self):
        _, _, icfg, sol = solved("int main() { return 0; }")
        assert sol.must_alias(icfg.exit_of("main"), nm("z"), nm("z"))

    def test_null_assignments_never_equate(self):
        _, _, icfg, sol = solved(
            "int *p; int *q; int main() { p = NULL; q = NULL; return 0; }"
        )
        exit_node = icfg.exit_of("main")
        assert not sol.must_alias(exit_node, nm("p", DEREF), nm("q", DEREF))
        assert sol.must_resolve(exit_node, nm("p", DEREF)) is None

    def test_opaque_rhs_kills_previous_fact(self):
        _, _, icfg, sol = solved(
            "int x; int *p; int main() { p = &x; p = NULL; return 0; }"
        )
        assert not sol.must_alias(icfg.exit_of("main"), nm("p", DEREF), nm("x"))


class TestJoins:
    def test_agreeing_branches_survive_the_join(self):
        _, _, icfg, sol = solved(
            "int g; int x; int *p;"
            " int main() { if (g) { p = &x; } else { p = &x; } return 0; }"
        )
        assert sol.must_alias(icfg.exit_of("main"), nm("p", DEREF), nm("x"))

    def test_disagreeing_branches_are_dropped(self):
        _, _, icfg, sol = solved(
            "int g; int x; int y; int *p;"
            " int main() { if (g) { p = &x; } else { p = &y; } return 0; }"
        )
        exit_node = icfg.exit_of("main")
        assert not sol.must_alias(exit_node, nm("p", DEREF), nm("x"))
        assert not sol.must_alias(exit_node, nm("p", DEREF), nm("y"))
        assert sol.must_resolve(exit_node, nm("p", DEREF)) is None

    def test_one_sided_conditional_drops_the_fact(self):
        _, _, icfg, sol = solved(
            "int g; int x; int *p;"
            " int main() { p = NULL; if (g) { p = &x; } return 0; }"
        )
        assert not sol.must_alias(icfg.exit_of("main"), nm("p", DEREF), nm("x"))


class TestStrongUpdates:
    def test_store_through_grounded_deref_kills_target(self):
        _, _, icfg, sol = solved(DEMO)
        exit_node = icfg.exit_of("main")
        # *h still must-aliases p (h itself was not written) ...
        assert sol.must_alias(exit_node, nm("h", DEREF), nm("p"))
        # ... but the opaque store through *h killed p's own fact.
        assert not sol.must_alias(exit_node, nm("p", DEREF), nm("x"))


class TestInterprocedural:
    def test_call_binds_formal_to_actual_target(self):
        _, _, icfg, sol = solved(
            "int g; void f(int *a) { } "
            "int main() { int *p; p = &g; f(p); return 0; }"
        )
        f_exit = icfg.exit_of("f")
        assert sol.must_alias(f_exit, nm("f::a", DEREF), nm("g"))

    def test_exit_to_return_flow_is_dropped(self):
        # v1 deliberately re-seeds RETURN from the call-site state:
        # facts established inside the callee do not flow back.
        _, _, icfg, sol = solved(
            "int g; int *p; void f(void) { p = &g; } "
            "int main() { f(); return 0; }"
        )
        assert not sol.must_alias(icfg.exit_of("main"), nm("p", DEREF), nm("g"))


class TestIntervalSolution:
    def _pair(self, source, k=2):
        analyzed, _, icfg, must = solved(source, k=k)
        may = MayAliasSolution(
            icfg,
            KernelAnalysis(analyzed, icfg, k=k).run(),
            NameContext(analyzed.symbols, k),
            k,
        )
        return icfg, IntervalSolution(may, must)

    def test_interval_orders_must_below_may(self):
        icfg, interval = self._pair(DEMO)
        for node in icfg.nodes:
            must_n, may_n = interval.interval_counts(node)
            assert must_n <= may_n
            for pair in interval.must_pairs(node):
                lo, hi = interval.interval(node, pair.first, pair.second)
                assert (lo, hi) == (True, True)

    def test_stats_carry_both_sides(self):
        _, interval = self._pair(DEMO)
        stats = interval.stats_dict()
        assert stats["must"]["engine"] == "must"
        width = stats["interval"]
        assert width["width"] == (
            width["may_node_pairs"] - width["must_node_pairs"]
        )
        assert width["width"] >= 0

    def test_fixture_must_subset_of_may(self):
        icfg, interval = self._pair(ALL_FIXTURES["figure1"], k=2)
        for node in icfg.nodes:
            for pair in interval.must_pairs(node):
                assert interval.alias_query(node, pair.first, pair.second), (
                    node,
                    pair,
                )


class TestEnvelopeCache:
    def test_roundtrip_miss_then_hit(self, tmp_path):
        analyzed = parse_and_analyze(DEMO)
        icfg = IcfgBuilder(analyzed).build()
        cache = SolutionCache(tmp_path)
        first, status1 = solve_must_with_cache(analyzed, icfg, k=3, cache=cache)
        second, status2 = solve_must_with_cache(analyzed, icfg, k=3, cache=cache)
        assert (status1, status2) == ("miss", "hit")
        assert first.node_pairs() == second.node_pairs()
        for node in icfg.nodes:
            assert first.must_pairs(node) == second.must_pairs(node)

    def test_no_cache_reports_off(self):
        analyzed = parse_and_analyze(DEMO)
        icfg = IcfgBuilder(analyzed).build()
        _, status = solve_must_with_cache(analyzed, icfg, k=3, cache=None)
        assert status == "off"


class TestDynamicOracle:
    @pytest.mark.parametrize("name", ["figure1", "matrix_swap"])
    def test_fixture_claims_hold_on_recorded_paths(self, name):
        analyzed, builder, icfg, sol = solved(ALL_FIXTURES[name], k=2)
        report = validate_must_dynamic(
            analyzed, builder, icfg, sol, draws=3, fuel=60_000
        )
        assert report.ok, [str(v) for v in report.violations[:5]]
        assert report.draws == 3

    def test_demo_claims_hold(self):
        analyzed, builder, icfg, sol = solved(DEMO)
        report = validate_must_dynamic(analyzed, builder, icfg, sol, draws=2)
        assert report.ok, [str(v) for v in report.violations[:5]]
