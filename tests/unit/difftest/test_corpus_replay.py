"""Corpus replay: every persisted counterexample must come back clean
on the healthy engine.

Entries record bugs that were found and fixed (or injected by a
mutation), so a violation here means a regression.  This is the fast
tier-1 slice of the difftest suite — wide generator sweeps live behind
the ``difftest`` marker (see docs/TESTING.md).
"""

import pytest

from repro.difftest import (
    DifftestConfig,
    corpus_entries,
    difftest_source,
    load_corpus_entry,
)

ENTRIES = corpus_entries()


def test_corpus_is_not_empty():
    assert ENTRIES, "tests/corpus/ should hold at least one entry"


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_replays_clean(path):
    source, metadata = load_corpus_entry(path)
    config = DifftestConfig(draws=4, k=metadata.get("k", 2), run_baselines=False)
    verdict = difftest_source(source, config, name=str(path))
    assert verdict.ok, verdict.report()


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_has_metadata(path):
    _, metadata = load_corpus_entry(path)
    assert "checks" in metadata, f"{path} lacks difftest-corpus metadata"
