"""Differential harness: verdict structure, lattice checks, and the
budget-partial degradation contract."""

import pytest

from repro.difftest import DifftestConfig, difftest_source, run_difftest_suite
from repro.difftest.harness import (
    CHECK_DYNAMIC_IN_EXACT,
    CHECK_DYNAMIC_IN_LR,
    CHECK_EXACT_IN_LR,
    CHECK_KERNEL_EQ_REFERENCE,
    CHECK_LINT_SOUNDNESS,
    CHECK_LR_IN_WEIHL,
    CHECK_MUST_ORACLE,
    CHECK_MUST_SUBSET_LR,
    CHECK_PARTIAL_TAINT,
    CHECK_SUMMARY_EQ_KERNEL,
)
from repro.programs.fixtures import FIGURE1

FAST = DifftestConfig(draws=4, run_baselines=False)


class TestVerdict:
    def test_figure1_all_checks_pass(self):
        verdict = difftest_source(FIGURE1, FAST, name="figure1")
        assert verdict.ok
        by_name = {c.name: c.status for c in verdict.checks}
        assert by_name == {
            CHECK_DYNAMIC_IN_LR: "ok",
            CHECK_EXACT_IN_LR: "ok",
            CHECK_DYNAMIC_IN_EXACT: "ok",
            CHECK_LR_IN_WEIHL: "ok",
            CHECK_LINT_SOUNDNESS: "ok",
            CHECK_KERNEL_EQ_REFERENCE: "ok",
            CHECK_SUMMARY_EQ_KERNEL: "ok",
            CHECK_MUST_SUBSET_LR: "ok",
            CHECK_MUST_ORACLE: "ok",
        }

    def test_stats_cover_every_stage(self):
        verdict = difftest_source(FIGURE1, DifftestConfig(draws=2))
        assert verdict.stats["lr"]["complete"]
        assert verdict.stats["dynamic_oracle"]["draws"] == 2
        assert verdict.stats["exact_oracle"]["complete"]
        assert "andersen" in verdict.stats["baselines"]
        assert "typebased" in verdict.stats["baselines"]
        assert "weihl" in verdict.stats
        assert "fp_delta" in verdict.stats["lint"]

    def test_report_is_readable(self):
        verdict = difftest_source(FIGURE1, FAST)
        text = verdict.report()
        assert "OK" in text
        assert CHECK_DYNAMIC_IN_LR in text

    def test_as_dict_round_trips_to_json(self):
        import json

        verdict = difftest_source(FIGURE1, FAST)
        assert json.loads(json.dumps(verdict.as_dict()))["ok"] is True

    def test_exact_oracle_gated_by_icfg_size(self):
        config = DifftestConfig(draws=2, run_baselines=False, exact_max_nodes=1)
        verdict = difftest_source(FIGURE1, config)
        assert verdict.ok
        assert verdict.check(CHECK_EXACT_IN_LR).status == "skipped"
        assert verdict.check(CHECK_DYNAMIC_IN_EXACT).status == "skipped"
        assert verdict.check(CHECK_DYNAMIC_IN_LR).status == "ok"


class TestBudgetPartial:
    """PR 1 interaction: a budget-truncated solution makes no
    containment claim, so the lattice checks must degrade to the
    taint invariants instead of false-alarming."""

    def test_max_facts_partial_skips_containment(self):
        verdict = difftest_source(
            FIGURE1, DifftestConfig(max_facts=10, run_baselines=False)
        )
        assert verdict.ok
        statuses = {c.name: c.status for c in verdict.checks}
        assert statuses[CHECK_DYNAMIC_IN_LR] == "skipped"
        assert statuses[CHECK_EXACT_IN_LR] == "skipped"
        assert statuses[CHECK_LR_IN_WEIHL] == "skipped"
        assert statuses[CHECK_LINT_SOUNDNESS] == "skipped"
        assert statuses[CHECK_MUST_SUBSET_LR] == "skipped"
        assert statuses[CHECK_MUST_ORACLE] == "skipped"
        assert statuses[CHECK_PARTIAL_TAINT] == "ok"
        assert not verdict.stats["lr"]["complete"]

    def test_deadline_partial_skips_containment(self):
        # FIGURE1 drains in fewer pops than the engine's deadline poll
        # interval, so use a generated program with a bigger worklist.
        from repro.difftest.harness import DEFAULT_SUITE_SPEC
        from repro.programs import ProgramSpec, generate_program

        source = generate_program(
            ProgramSpec(name="deadline", seed=5, **DEFAULT_SUITE_SPEC)
        )
        verdict = difftest_source(
            source,
            DifftestConfig(deadline_seconds=0.0, run_baselines=False),
        )
        assert verdict.ok
        assert verdict.check(CHECK_PARTIAL_TAINT).status == "ok"
        assert verdict.stats["lr"]["budget"]["reason"] == "deadline"

    def test_partial_taint_check_is_not_vacuous(self, monkeypatch):
        # A partial store smuggling a CLEAN fact violates the PR 1
        # contract and must be flagged.
        from repro.core.kernel import KernelAnalysis
        from repro.core.store import MayHoldStore

        original = MayHoldStore.taint_all

        def leaky_taint_all(self):
            count = original(self)
            for key in list(self._facts)[:1]:
                self._facts[key] = True
            return count

        monkeypatch.setattr(MayHoldStore, "taint_all", leaky_taint_all)

        # The kernel demotes through its private _taint_all (both at
        # the budget trip and via KernelStore.taint_all), so leak there.
        kernel_original = KernelAnalysis._taint_all

        def leaky_kernel_taint_all(self):
            count = kernel_original(self)
            if self._taint:
                self._taint[0] = 1
            return count

        monkeypatch.setattr(KernelAnalysis, "_taint_all", leaky_kernel_taint_all)
        verdict = difftest_source(
            FIGURE1, DifftestConfig(max_facts=10, run_baselines=False)
        )
        check = verdict.check(CHECK_PARTIAL_TAINT)
        assert check.status == "violation"

    def test_on_budget_raise_skips_program(self):
        config = DifftestConfig(
            max_facts=10, on_budget="raise", run_baselines=False
        )
        verdict = difftest_source(FIGURE1, config)
        assert verdict.ok
        assert verdict.stats["lr"]["budget_exceeded"]
        assert all(c.status == "skipped" for c in verdict.checks)


class TestSuite:
    def test_suite_aggregates_stats(self):
        result = run_difftest_suite([1, 2], FAST)
        assert result.ok
        stats = result.stats_dict()
        assert stats["programs"] == 2
        assert stats["failures"] == 0
        assert stats["checks"][CHECK_DYNAMIC_IN_LR]["ok"] == 2

    def test_suite_stops_on_first_failure(self, monkeypatch):
        from repro.core.transfer import AssignTransfer

        monkeypatch.setattr(
            AssignTransfer, "intro", lambda self, succ_id, stmt: None
        )
        result = run_difftest_suite(range(1, 10), FAST)
        assert not result.ok
        # seed 1 already exhibits the bug; the sweep must not run on.
        assert len(result.verdicts) == 1
