"""ddmin shrinking: minimality on synthetic predicates, validity
filtering, and budget behavior."""

import pytest

from repro.difftest.shrink import _balanced_blocks, shrink_lines, shrink_source


def needs_lines(*required):
    """Predicate: all required lines still present."""

    def predicate(source):
        lines = set(source.splitlines())
        return all(r in lines for r in required)

    return predicate


class TestShrinkLines:
    def test_reduces_to_required_lines(self):
        lines = [f"line{i}" for i in range(40)]
        keep = {"line3", "line17", "line31"}
        reduced, _, exhausted = shrink_lines(
            lines, needs_lines(*keep), max_tests=2_000
        )
        assert set(reduced) == keep
        assert not exhausted

    def test_budget_exhaustion_reported(self):
        lines = [f"line{i}" for i in range(64)]
        reduced, tests, exhausted = shrink_lines(
            lines, needs_lines("line0", "line63"), max_tests=3
        )
        assert exhausted
        assert tests == 3
        # Whatever was kept still satisfies the predicate.
        assert needs_lines("line0", "line63")("\n".join(reduced) + "\n")

    def test_order_dependent_pairs_removed_by_tail_pass(self):
        # Lines removable only together (classic ddmin blind spot when
        # they land in different chunks).
        lines = ["a", "b", "c", "d"]

        def predicate(source):
            present = set(source.splitlines())
            # 'a' and 'b' must go together; 'c' is required.
            if ("a" in present) != ("b" in present):
                return False
            return "c" in present

        reduced, _, _ = shrink_lines(lines, predicate, max_tests=200)
        assert reduced == ["c"]


class TestBalancedBlocks:
    def test_brace_blocks_found(self):
        lines = [
            "int f() {",
            "  { int t;",
            "    t = 1;",
            "  }",
            "}",
        ]
        blocks = _balanced_blocks(lines)
        assert range(0, 5) in blocks
        assert range(1, 4) in blocks

    def test_unbalanced_input_is_safe(self):
        assert _balanced_blocks(["}", "{"]) == []


class TestShrinkSource:
    def test_original_must_satisfy_predicate(self):
        with pytest.raises(ValueError):
            shrink_source("int main() { return 0; }\n", lambda s: False)

    def test_blank_lines_dropped(self):
        source = "a\n\n\nb\n"
        result = shrink_source(source, needs_lines("a", "b"))
        assert result.source == "a\nb\n"
        assert result.original_lines == 4
        assert result.removed_lines == 2

    def test_result_counts(self):
        source = "\n".join(f"line{i}" for i in range(10)) + "\n"
        result = shrink_source(source, needs_lines("line5"))
        assert result.lines == 1
        assert result.source == "line5\n"
        assert result.tests_run > 1
