"""Mutation smoke test: an intentionally-broken transfer function must
be caught by the differential harness, shrunk to a small program, and
persisted in corpus format.

This is the end-to-end proof that the oracle subsystem has teeth — if
this test ever passes with the mutation *not* detected, the harness
has gone vacuous.
"""

import pytest

from repro.core.transfer import RhsView
from repro.difftest import (
    DifftestConfig,
    difftest_source,
    load_corpus_entry,
    persist_counterexample,
    run_difftest_suite,
    shrink_source,
    violation_predicate,
)
from repro.difftest.harness import CHECK_DYNAMIC_IN_LR

FAST = DifftestConfig(draws=4, run_baselines=False)

COMMITTED_ENTRY = "tests/corpus/mutation-assign-intro.c"


@pytest.fixture
def broken_intro(monkeypatch):
    """Disable Figure 2's alias introduction at assignments — the
    engine silently misses every (*p, x) fact an assignment creates.

    ``RhsView.intro_target`` is the single source of introduced pairs
    for *both* engines (the reference transfer calls it per visit, the
    kernel bakes it into its per-node table), so the mutation breaks
    them identically and must be caught by the oracle checks rather
    than the kernel-vs-reference equality edge."""
    monkeypatch.setattr(RhsView, "intro_target", lambda self, lhs: None)


def test_mutation_caught_shrunk_and_persisted(broken_intro, tmp_path):
    result = run_difftest_suite(range(1, 10), FAST)
    assert not result.ok, "harness failed to catch a disabled transfer"
    failure = result.failures[0]
    checks = [c.name for c in failure.violating_checks]
    assert CHECK_DYNAMIC_IN_LR in checks

    shrunk = shrink_source(failure.source, violation_predicate(FAST, checks))
    assert shrunk.lines <= 20, shrunk.source
    # The shrunk program still exhibits exactly the original violation.
    verdict = difftest_source(shrunk.source, FAST)
    assert CHECK_DYNAMIC_IN_LR in [c.name for c in verdict.violating_checks]

    path = persist_counterexample(
        shrunk.source,
        tmp_path,
        failure.name,
        metadata={"checks": checks, "k": FAST.k},
    )
    source, metadata = load_corpus_entry(path)
    assert metadata["checks"] == checks
    # Corpus entries are fed to the harness verbatim (comments and
    # all) and must still reproduce under the mutation.
    replay = difftest_source(source, FAST)
    assert not replay.ok


def test_committed_corpus_entry_reproduces_under_mutation(broken_intro):
    source, metadata = load_corpus_entry(COMMITTED_ENTRY)
    assert metadata["mutation"].startswith("AssignTransfer.intro")
    assert metadata["lines"] <= 20
    verdict = difftest_source(source, FAST, name=COMMITTED_ENTRY)
    found = [c.name for c in verdict.violating_checks]
    assert set(metadata["checks"]) & set(found), (
        f"committed counterexample no longer reproduces; found {found}"
    )
