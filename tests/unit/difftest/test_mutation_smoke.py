"""Mutation smoke test: an intentionally-broken transfer function must
be caught by the differential harness, shrunk to a small program, and
persisted in corpus format.

This is the end-to-end proof that the oracle subsystem has teeth — if
this test ever passes with the mutation *not* detected, the harness
has gone vacuous.
"""

import pytest

from repro.core.transfer import RhsView
from repro.difftest import (
    DifftestConfig,
    difftest_source,
    load_corpus_entry,
    persist_counterexample,
    run_difftest_suite,
    shrink_source,
    violation_predicate,
)
from repro.difftest.harness import CHECK_DYNAMIC_IN_LR, CHECK_SUMMARY_EQ_KERNEL

FAST = DifftestConfig(draws=4, run_baselines=False)

COMMITTED_ENTRY = "tests/corpus/mutation-assign-intro.c"


@pytest.fixture
def broken_intro(monkeypatch):
    """Disable Figure 2's alias introduction at assignments — the
    engine silently misses every (*p, x) fact an assignment creates.

    ``RhsView.intro_target`` is the single source of introduced pairs
    for *both* engines (the reference transfer calls it per visit, the
    kernel bakes it into its per-node table), so the mutation breaks
    them identically and must be caught by the oracle checks rather
    than the kernel-vs-reference equality edge."""
    monkeypatch.setattr(RhsView, "intro_target", lambda self, lhs: None)


def test_mutation_caught_shrunk_and_persisted(broken_intro, tmp_path):
    result = run_difftest_suite(range(1, 10), FAST)
    assert not result.ok, "harness failed to catch a disabled transfer"
    failure = result.failures[0]
    checks = [c.name for c in failure.violating_checks]
    assert CHECK_DYNAMIC_IN_LR in checks

    # The must_subset_lr edge also fires on this mutation (dropping may
    # facts strands must pairs outside the may solution), so shrink on
    # the dynamic check alone to keep the replay assertion sharp.
    shrunk = shrink_source(
        failure.source, violation_predicate(FAST, [CHECK_DYNAMIC_IN_LR])
    )
    assert shrunk.lines <= 20, shrunk.source
    # The shrunk program still exhibits exactly the original violation.
    verdict = difftest_source(shrunk.source, FAST)
    assert CHECK_DYNAMIC_IN_LR in [c.name for c in verdict.violating_checks]

    path = persist_counterexample(
        shrunk.source,
        tmp_path,
        failure.name,
        metadata={"checks": checks, "k": FAST.k},
    )
    source, metadata = load_corpus_entry(path)
    assert metadata["checks"] == checks
    # Corpus entries are fed to the harness verbatim (comments and
    # all) and must still reproduce under the mutation.
    replay = difftest_source(source, FAST)
    assert not replay.ok


@pytest.fixture
def broken_summary_join(monkeypatch):
    """Sabotage the summary engine's instantiation join: injected
    deltas silently drop the mirrored callee exit facts, so a caller's
    return join never sees what its callees did.  Only the summary
    engine routes through :class:`ProcSolver`, so the kernel solution
    (and every oracle check against it) stays correct — the violation
    must surface on the ``summary_eq_kernel`` edge and nowhere else."""
    from repro.summaries.solver import ProcSolver

    original = ProcSolver.inject

    def drop_mirrors(self, delta):
        slim = dict(delta)
        slim["mirrors"] = {}
        original(self, slim)

    monkeypatch.setattr(ProcSolver, "inject", drop_mirrors)


def test_summary_join_mutation_caught_by_summary_edge(broken_summary_join):
    from repro.programs import ALL_FIXTURES

    verdict = difftest_source(ALL_FIXTURES["figure1"], FAST, name="figure1")
    assert not verdict.ok, "harness failed to catch a dropped summary join"
    names = [c.name for c in verdict.violating_checks]
    assert names == [CHECK_SUMMARY_EQ_KERNEL]


def test_committed_corpus_entry_reproduces_under_mutation(broken_intro):
    source, metadata = load_corpus_entry(COMMITTED_ENTRY)
    assert metadata["mutation"].startswith("AssignTransfer.intro")
    assert metadata["lines"] <= 20
    verdict = difftest_source(source, FAST, name=COMMITTED_ENTRY)
    found = [c.name for c in verdict.violating_checks]
    assert set(metadata["checks"]) & set(found), (
        f"committed counterexample no longer reproduces; found {found}"
    )
