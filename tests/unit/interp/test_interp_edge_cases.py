"""Additional interpreter edge cases."""

import pytest

from repro.frontend import parse_and_analyze
from repro.interp import Interpreter, InterpError, InterpTrap


def run(source, **kwargs):
    analyzed = parse_and_analyze(source)
    interp = Interpreter(analyzed, **kwargs)
    return interp.run(), interp


class TestCallDepth:
    def test_runaway_recursion_traps(self):
        result, _ = run(
            """
            int spin(int d) { return spin(d + 1); }
            int main() { return spin(0); }
            """,
            fuel=1_000_000,
            max_call_depth=50,
        )
        assert result.trapped
        assert "call depth" in result.trap_message

    def test_bounded_recursion_ok(self):
        result, _ = run(
            """
            int down(int d) { if (d <= 0) { return 0; } return down(d - 1); }
            int main() { return down(40); }
            """,
            max_call_depth=50,
        )
        assert not result.trapped


class TestPointerEdges:
    def test_pointer_compare_with_null(self):
        result, _ = run(
            """
            int *p;
            int main() {
                if (p == NULL) { return 1; }
                return 0;
            }
            """
        )
        assert result.exit_value == 1

    def test_pointer_ordering_is_consistent(self):
        result, _ = run(
            """
            int a, b;
            int main() {
                int *p, *q;
                p = &a; q = &b;
                if (p < q) { return (q < p) ? 2 : 1; }
                return (q < p) ? 1 : 2;
            }
            """
        )
        assert result.exit_value == 1  # strict order is antisymmetric

    def test_logical_operators_short_circuit(self):
        # (p != NULL && *p) must not trap when p is NULL.
        result, _ = run(
            """
            int *p;
            int main() {
                if (p != NULL && *p) { return 2; }
                return 1;
            }
            """
        )
        assert result.exit_value == 1

    def test_string_literals_share_storage(self):
        from repro.icfg import IcfgBuilder

        analyzed = parse_and_analyze(
            """
            char *a, *b;
            int main() {
                a = "same";
                b = "same";
                return a == b;
            }
            """
        )
        builder = IcfgBuilder(analyzed)
        builder.build()
        interp = Interpreter(analyzed, string_uids=dict(builder._string_uids))
        result = interp.run()
        assert result.exit_value == 1

    def test_negative_modulo_is_pythonic_but_total(self):
        result, _ = run("int main() { return -7 % 3; }")
        assert result.exit_value in (2, -1)  # defined, no trap


class TestGotoUnsupported:
    def test_goto_raises_interp_error(self):
        with pytest.raises(InterpError):
            run("int main() { goto out; out: return 0; }")
