"""Unit tests for the concrete MiniC interpreter."""

import pytest

from repro.frontend import parse_and_analyze
from repro.interp import Interpreter, InterpTrap, OutOfFuel


def run(source, fuel=50_000, extern_values=None):
    analyzed = parse_and_analyze(source)
    interp = Interpreter(analyzed, fuel=fuel, extern_values=extern_values)
    return interp.run(), interp


class TestScalars:
    def test_return_value(self):
        result, _ = run("int main() { return 41 + 1; }")
        assert result.exit_value == 42

    def test_arithmetic(self):
        result, _ = run("int main() { return (2 + 3) * 4 - 6 / 2; }")
        assert result.exit_value == 17

    def test_division_truncates_toward_zero(self):
        result, _ = run("int main() { return -7 / 2; }")
        assert result.exit_value == -3

    def test_division_by_zero_traps(self):
        result, _ = run("int main() { int z; z = 0; return 1 / z; }")
        assert result.trapped

    def test_globals_initialized(self):
        result, _ = run("int g = 7; int main() { return g; }")
        assert result.exit_value == 7

    def test_uninitialized_scalar_reads_zero(self):
        result, _ = run("int main() { int x; return x; }")
        assert result.exit_value == 0

    def test_compound_assignment(self):
        result, _ = run("int main() { int x; x = 5; x += 3; x *= 2; return x; }")
        assert result.exit_value == 16

    def test_increment_decrement(self):
        result, _ = run(
            "int main() { int x; x = 5; x++; ++x; x--; return x; }"
        )
        assert result.exit_value == 6

    def test_comparisons_and_logic(self):
        result, _ = run(
            "int main() { return (1 < 2) && (3 >= 3) && !(4 == 5) || 0; }"
        )
        assert result.exit_value == 1


class TestControlFlow:
    def test_if_else(self):
        result, _ = run("int main() { if (0) { return 1; } else { return 2; } }")
        assert result.exit_value == 2

    def test_while_loop(self):
        result, _ = run(
            "int main() { int i, s; s = 0; i = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }"
        )
        assert result.exit_value == 10

    def test_for_loop_with_break_continue(self):
        result, _ = run(
            """
            int main() {
                int i, s;
                s = 0;
                for (i = 0; i < 10; i = i + 1) {
                    if (i == 7) { break; }
                    if (i % 2) { continue; }
                    s = s + i;
                }
                return s;
            }
            """
        )
        assert result.exit_value == 0 + 2 + 4 + 6

    def test_do_while_runs_once(self):
        result, _ = run("int main() { int i; i = 9; do { i = i + 1; } while (0); return i; }")
        assert result.exit_value == 10

    def test_switch_with_fallthrough(self):
        result, _ = run(
            """
            int main() {
                int x, s;
                x = 1; s = 0;
                switch (x) { case 1: s = s + 1; case 2: s = s + 2; break; default: s = 100; }
                return s;
            }
            """
        )
        assert result.exit_value == 3

    def test_switch_default(self):
        result, _ = run(
            "int main() { int x; x = 9; switch (x) { case 1: return 1; default: return 7; } }"
        )
        assert result.exit_value == 7

    def test_infinite_loop_runs_out_of_fuel(self):
        with pytest.raises(OutOfFuel):
            analyzed = parse_and_analyze("int main() { while (1) { } return 0; }")
            Interpreter(analyzed, fuel=1000).run()

    def test_ternary(self):
        result, _ = run("int main() { int x; x = 3; return x > 2 ? 10 : 20; }")
        assert result.exit_value == 10


class TestPointers:
    def test_address_and_deref(self):
        result, _ = run(
            "int main() { int v, *p; v = 5; p = &v; *p = 9; return v; }"
        )
        assert result.exit_value == 9

    def test_double_indirection(self):
        result, _ = run(
            """
            int main() {
                int v, *p, **pp;
                p = &v; pp = &p;
                **pp = 42;
                return v;
            }
            """
        )
        assert result.exit_value == 42

    def test_null_deref_traps(self):
        result, _ = run("int main() { int *p; p = NULL; return *p; }")
        assert result.trapped

    def test_uninitialized_pointer_deref_traps(self):
        result, _ = run("int main() { int *p; return *p; }")
        assert result.trapped

    def test_pointer_equality(self):
        result, _ = run(
            """
            int main() {
                int a, b, *p, *q;
                p = &a; q = &a;
                if (p == q) { q = &b; }
                if (p != q) { return 1; }
                return 0;
            }
            """
        )
        assert result.exit_value == 1

    def test_malloc_and_struct_fields(self):
        result, _ = run(
            """
            struct node { int v; struct node *next; };
            int main() {
                struct node *n;
                n = malloc(16);
                n->v = 5;
                n->next = n;
                return n->next->v;
            }
            """
        )
        assert result.exit_value == 5

    def test_linked_list_sum(self):
        result, _ = run(
            """
            struct node { int v; struct node *next; };
            int main() {
                struct node *head, *cur;
                int i, s;
                head = NULL;
                for (i = 1; i <= 4; i = i + 1) {
                    cur = malloc(16);
                    cur->v = i;
                    cur->next = head;
                    head = cur;
                }
                s = 0;
                cur = head;
                while (cur != NULL) { s = s + cur->v; cur = cur->next; }
                return s;
            }
            """
        )
        assert result.exit_value == 10

    def test_array_is_aggregate(self):
        # Writing any index writes the single aggregate cell.
        result, _ = run("int main() { int a[4]; a[0] = 5; return a[3]; }")
        assert result.exit_value == 5

    def test_struct_copy_copies_pointers(self):
        result, _ = run(
            """
            struct pair { int *x; int *y; };
            int main() {
                struct pair p1, p2;
                int v;
                v = 3;
                p1.x = &v; p1.y = NULL;
                p2 = p1;
                *p2.x = 8;
                return v;
            }
            """
        )
        assert result.exit_value == 8


class TestFunctions:
    def test_call_by_value(self):
        result, _ = run(
            """
            int inc(int x) { x = x + 1; return x; }
            int main() { int v; v = 5; inc(v); return v; }
            """
        )
        assert result.exit_value == 5

    def test_pointer_parameter_mutates(self):
        result, _ = run(
            """
            void set(int *p, int v) { *p = v; }
            int main() { int x; set(&x, 77); return x; }
            """
        )
        assert result.exit_value == 77

    def test_recursion(self):
        result, _ = run(
            """
            int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
            int main() { return fact(5); }
            """
        )
        assert result.exit_value == 120

    def test_pointer_return(self):
        result, _ = run(
            """
            int *pick(int *a, int *b, int which) {
                if (which) { return a; }
                return b;
            }
            int main() {
                int x, y, *p;
                x = 1; y = 2;
                p = pick(&x, &y, 0);
                *p = 50;
                return y;
            }
            """
        )
        assert result.exit_value == 50

    def test_swap_through_pointers(self):
        result, _ = run(
            """
            int *pa, *pb, a, b;
            void swap(int **x, int **y) { int *t; t = *x; *x = *y; *y = t; }
            int main() {
                a = 1; b = 2;
                pa = &a; pb = &b;
                swap(&pa, &pb);
                return *pa;
            }
            """
        )
        assert result.exit_value == 2

    def test_extern_values_scripted(self):
        result, _ = run(
            "int main() { return rand() + rand(); }", extern_values=[3, 4]
        )
        assert result.exit_value == 7

    def test_missing_function_traps(self):
        # Prototype with a body elsewhere missing is rejected earlier by
        # the lowerer, but the interpreter guards too: only scalar
        # externals reach here and they do not trap.
        result, _ = run("int main() { return puts(0); }")
        assert not result.trapped
