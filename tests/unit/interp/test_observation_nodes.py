"""Observation coverage at call/return/entry/exit nodes.

PR 1 validated only statement-end nodes; the dynamic oracle also needs
the bind/back-bind edges.  The Figure 1 program is the paper's own
motivating case: after the second call to ``p`` the pair
``(**l1, *l2)`` holds in ``main`` precisely because ``(*g1, g2)`` holds
at ``p``'s exit under *two different assumption sets* — the case the
exit rule's two-assumption join exists for.
"""

import pytest

from repro.core import analyze_program
from repro.frontend import parse_and_analyze
from repro.icfg import IcfgBuilder
from repro.icfg.ir import NodeKind
from repro.interp import (
    make_observed_interpreter,
    observed_aliases,
    validate_soundness,
)
from repro.names import AliasPair, ObjectName
from repro.programs.fixtures import FIGURE1


def build(source):
    analyzed = parse_and_analyze(source)
    builder = IcfgBuilder(analyzed)
    icfg = builder.build()
    return analyzed, builder, icfg


def record_by_node(source, **kwargs):
    """Run with full observation; alias sets per node, in node order."""
    analyzed, builder, icfg = build(source)
    events = []

    def observer(node, memory):
        events.append((node, observed_aliases(memory, max_derefs=3)))

    interp = make_observed_interpreter(
        analyzed, builder, icfg, observer=observer, **kwargs
    )
    result = interp.run()
    return analyzed, builder, icfg, events, result


class TestObservationPoints:
    def test_all_interprocedural_kinds_observed(self):
        _, _, _, events, result = record_by_node(FIGURE1)
        assert not result.trapped
        kinds = {node.kind for node, _ in events}
        assert {
            NodeKind.CALL,
            NodeKind.RETURN,
            NodeKind.ENTRY,
            NodeKind.EXIT,
        } <= kinds

    def test_entry_of_main_not_observed(self):
        # Global pointer initializers lower *after* main's entry node,
        # so observing main's entry would compare against facts that
        # predate the interpreter's startup state.
        _, _, icfg, events, _ = record_by_node(FIGURE1)
        main_entry = icfg.procs["main"].entry
        assert all(node is not main_entry for node, _ in events)

    def test_callee_entries_and_exits_observed(self):
        _, _, icfg, events, _ = record_by_node(FIGURE1)
        p_entry = icfg.procs["p"].entry
        p_exit = icfg.procs["p"].exit
        seen = [node for node, _ in events]
        assert seen.count(p_entry) == 2  # p is called twice
        assert seen.count(p_exit) == 2
        assert icfg.procs["main"].exit in seen

    def test_trapped_call_skips_exit(self):
        source = """
        int *g;
        void bad(void) { *g = 1; }
        int main() { bad(); return 0; }
        """
        _, _, icfg, events, result = record_by_node(source)
        assert result.trapped
        assert all(node is not icfg.procs["bad"].exit for node, _ in events)
        # ... but the entry was still reached before the NULL deref.
        assert any(node is icfg.procs["bad"].entry for node, _ in events)


class TestFigure1TwoAssumptionCase:
    """The ``(**l1, *l2)`` alias after the second ``p()`` call."""

    def pair(self):
        return AliasPair(
            ObjectName("main::l1", ("*", "*")),
            ObjectName("main::l2", ("*",)),
        )

    def test_alias_observed_at_both_return_nodes(self):
        _, builder, _, events, _ = record_by_node(FIGURE1)
        returns = [
            ret for _, ret in builder.call_site_nodes.values()
            if ret.callee == "p"
        ]
        assert len(returns) == 2
        observed = {
            node.nid: pairs for node, pairs in events if node in returns
        }
        # l1 = &g1 precedes both calls; g1 = &g2 holds across each
        # return, so **l1 and *l2 name the same cell (g2) at both.
        assert all(self.pair() in pairs for pairs in observed.values())
        assert len(observed) == 2

    @pytest.mark.parametrize("k", [2, 3])
    def test_static_solution_predicts_the_alias(self, k):
        analyzed, builder, icfg, events, _ = record_by_node(FIGURE1)
        solution = analyze_program(analyzed, icfg, k=k)
        pair = self.pair()
        for _, ret in builder.call_site_nodes.values():
            if ret.callee == "p":
                assert solution.alias_query(ret, pair.first, pair.second)

    def test_conditional_fact_at_p_exit(self):
        # At p's exit the visible alias (*g1, g2) must hold — reached
        # under two distinct assumption sets (one per call site).
        analyzed, builder, icfg = build(FIGURE1)
        solution = analyze_program(analyzed, icfg, k=2)
        p_exit = icfg.procs["p"].exit
        assert solution.alias_query(
            p_exit, ObjectName("g1", ("*",)), ObjectName("g2")
        )

    def test_validate_soundness_covers_interprocedural_kinds(self):
        report = validate_soundness(FIGURE1, k=2)
        assert report.ok
        for kind in ("CALL", "RETURN", "ENTRY", "EXIT"):
            assert report.checked_by_kind.get(kind, 0) > 0


class TestScalarGlobalScripting:
    SOURCE = """
    int *p; int sel; int a; int b;
    int main() {
        if (sel % 2) { p = &a; } else { p = &b; }
        return 0;
    }
    """

    def run_with(self, sel):
        _, _, _, events, result = record_by_node(
            self.SOURCE, scalar_global_values={"sel": sel}
        )
        assert not result.trapped
        return set().union(*(pairs for _, pairs in events))

    def test_scripted_global_steers_control_flow(self):
        star_p = ObjectName("p", ("*",))
        odd = self.run_with(1)
        even = self.run_with(2)
        assert AliasPair(star_p, ObjectName("a")) in odd
        assert AliasPair(star_p, ObjectName("b")) in even
        assert AliasPair(star_p, ObjectName("b")) not in odd

    def test_initializers_override_scripted_values(self):
        source = "int g = 7; int main() { return g; }"
        analyzed, builder, icfg = build(source)
        interp = make_observed_interpreter(
            analyzed, builder, icfg, scalar_global_values={"g": 3}
        )
        result = interp.run()
        assert result.exit_value == 7
