"""Unit tests for the interpreter's memory model."""

from repro.frontend.types import ArrayType, PointerType, StructType, scalar
from repro.interp import Frame, Memory, Obj


class TestObj:
    def test_scalar_cell(self):
        cell = Obj(scalar("int"), "x")
        assert not cell.is_struct
        assert cell.value is None

    def test_struct_allocates_fields(self):
        st = StructType("pair")
        st.fields = [("a", scalar("int")), ("b", PointerType(scalar("int")))]
        st.complete = True
        cell = Obj(st, "s")
        assert cell.is_struct
        assert cell.field("a") is not cell.field("b")

    def test_array_collapses_to_element(self):
        cell = Obj(ArrayType(scalar("int"), 8), "arr")
        assert not cell.is_struct
        assert str(cell.type) == "int"

    def test_copy_from_scalar(self):
        a = Obj(scalar("int"), "a")
        b = Obj(scalar("int"), "b")
        a.value = 7
        b.copy_from(a)
        assert b.value == 7

    def test_copy_from_struct_recurses(self):
        st = StructType("pair")
        st.fields = [("a", scalar("int"))]
        st.complete = True
        src = Obj(st, "src")
        dst = Obj(st, "dst")
        src.field("a").value = 42
        dst.copy_from(src)
        assert dst.field("a").value == 42
        assert dst.field("a") is not src.field("a")

    def test_read_pointer(self):
        target = Obj(scalar("int"), "t")
        p = Obj(PointerType(scalar("int")), "p")
        assert p.read_pointer() is None
        p.value = target
        assert p.read_pointer() is target

    def test_unique_oids(self):
        a = Obj(scalar("int"))
        b = Obj(scalar("int"))
        assert a.oid != b.oid


class TestMemory:
    def test_frame_shadowing(self):
        memory = Memory()
        g = Obj(scalar("int"), "g")
        memory.globals["x"] = g
        frame = Frame("f")
        local = Obj(scalar("int"), "local")
        frame.bind("x", local)
        memory.push(frame)
        assert memory.lookup("x") is local
        memory.pop()
        assert memory.lookup("x") is g

    def test_lookup_missing(self):
        assert Memory().lookup("nope") is None

    def test_allocate_tracks_heap(self):
        memory = Memory()
        obj = memory.allocate(scalar("int"))
        assert obj in memory.heap

    def test_live_roots_globals_and_top_frames(self):
        memory = Memory()
        memory.globals["g"] = Obj(scalar("int"), "g")
        frame = Frame("f")
        frame.bind("f::x", Obj(scalar("int"), "x"))
        memory.push(frame)
        roots = memory.live_roots()
        assert set(roots) == {"g", "f::x"}

    def test_live_roots_excludes_recursion_duplicates(self):
        memory = Memory()
        for _ in range(2):
            frame = Frame("f")
            frame.bind("f::x", Obj(scalar("int")))
            memory.push(frame)
        assert "f::x" not in memory.live_roots()
