"""Unit tests for run-time alias observation."""

from repro.frontend import parse_and_analyze
from repro.frontend.types import PointerType, scalar
from repro.interp import Interpreter, Memory, Obj, observed_aliases
from repro.interp.recorder import enumerate_names
from repro.names import AliasPair, ObjectName


def make_memory():
    memory = Memory()
    v = Obj(scalar("int"), "v")
    p = Obj(PointerType(scalar("int")), "p")
    q = Obj(PointerType(scalar("int")), "q")
    p.value = v
    q.value = v
    memory.globals = {"v": v, "p": p, "q": q}
    return memory


class TestEnumeration:
    def test_roots_enumerated(self):
        memory = make_memory()
        names = {str(n) for n, _ in enumerate_names(memory, 2)}
        assert {"v", "p", "q", "*p", "*q"} <= names

    def test_deref_budget_respected(self):
        memory = Memory()
        a = Obj(PointerType(PointerType(scalar("int"))), "a")
        b = Obj(PointerType(scalar("int")), "b")
        c = Obj(scalar("int"), "c")
        a.value = b
        b.value = c
        memory.globals = {"a": a}
        names = {str(n) for n, _ in enumerate_names(memory, 1)}
        assert "*a" in names
        assert "**a" not in names

    def test_null_pointers_stop_walk(self):
        memory = Memory()
        p = Obj(PointerType(scalar("int")), "p")
        memory.globals = {"p": p}
        names = {str(n) for n, _ in enumerate_names(memory, 3)}
        assert names == {"p"}


class TestObservedAliases:
    def test_shared_target_observed(self):
        memory = make_memory()
        pairs = observed_aliases(memory, 2)
        star_p = ObjectName("p").deref()
        star_q = ObjectName("q").deref()
        assert AliasPair(star_p, star_q) in pairs
        assert AliasPair(star_p, ObjectName("v")) in pairs

    def test_no_false_aliases(self):
        memory = Memory()
        a = Obj(scalar("int"), "a")
        b = Obj(scalar("int"), "b")
        memory.globals = {"a": a, "b": b}
        assert observed_aliases(memory, 2) == set()

    def test_recursion_excludes_duplicated_uids(self):
        from repro.interp.memory import Frame

        memory = Memory()
        f1 = Frame("f")
        f2 = Frame("f")
        f1.bind("f::x", Obj(scalar("int"), "x1"))
        f2.bind("f::x", Obj(scalar("int"), "x2"))
        memory.push(f1)
        memory.push(f2)
        assert "f::x" not in memory.live_roots()

    def test_struct_fields_enumerated(self):
        from repro.frontend.types import StructType

        st = StructType("pair")
        st.fields = [("a", scalar("int")), ("b", scalar("int"))]
        st.complete = True
        memory = Memory()
        memory.globals = {"s": Obj(st, "s")}
        names = {str(n) for n, _ in enumerate_names(memory, 1)}
        assert {"s", "s.a", "s.b"} <= names


class TestObserverWiring:
    def test_observer_called_per_marked_statement(self):
        source = "int *p, v; int main() { p = &v; v = 3; return 0; }"
        from repro.icfg import IcfgBuilder

        analyzed = parse_and_analyze(source)
        builder = IcfgBuilder(analyzed)
        builder.build()
        seen = []
        interp = Interpreter(
            analyzed,
            stmt_end_nodes=builder.stmt_end_nodes,
            observer=lambda node, memory: seen.append(node.nid),
        )
        result = interp.run()
        assert not result.trapped
        assert len(seen) >= 2
