"""Serve metrics: percentiles, latency reservoirs, the stats document.

The contract (docs/SERVE.md): counters only ever move forward, the
latency reservoirs are bounded, percentiles are nearest-rank, and the
``repro-serve-stats/1`` document always carries the gauges the CI load
gate reads (5xx count, queue depth, ``edit_scoped_ratio``).
"""

from repro.serve.metrics import (
    CLASS_ANALYZE,
    CLASS_QUERY,
    SERVE_STATS_SCHEMA,
    ServeMetrics,
    percentile,
)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_median_of_odd_run(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        samples = [float(n) for n in range(100)]
        assert percentile(samples, 0.0) == 0.0
        assert percentile(samples, 1.0) == 99.0

    def test_p99_of_hundred(self):
        samples = [float(n) for n in range(100)]
        assert percentile(samples, 0.99) == 98.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0, 3.0, 7.0], 0.5) == 5.0


class TestRequestAccounting:
    def test_queue_depth_tracks_in_flight(self):
        metrics = ServeMetrics()
        s1 = metrics.request_started("POST /v1/query")
        s2 = metrics.request_started("POST /v1/query")
        assert metrics.queue_depth == 2
        assert metrics.queue_depth_peak == 2
        metrics.request_finished(s1, CLASS_QUERY, 200)
        assert metrics.queue_depth == 1
        metrics.request_finished(s2, CLASS_QUERY, 200)
        assert metrics.queue_depth == 0
        assert metrics.queue_depth_peak == 2
        assert metrics.requests_total == 2

    def test_status_classes(self):
        metrics = ServeMetrics()
        for status in (200, 204, 400, 404, 500, 503):
            started = metrics.request_started("GET /x")
            metrics.request_finished(started, CLASS_QUERY, status)
        assert metrics.responses_4xx == 2
        assert metrics.responses_5xx == 2

    def test_by_endpoint_counts(self):
        metrics = ServeMetrics()
        for _ in range(3):
            metrics.request_finished(metrics.request_started("GET /healthz"))
        metrics.request_finished(metrics.request_started("GET /metrics"))
        assert metrics.by_endpoint == {"GET /healthz": 3, "GET /metrics": 1}

    def test_reservoir_is_bounded(self):
        metrics = ServeMetrics(reservoir=8)
        for _ in range(100):
            metrics.request_finished(
                metrics.request_started("POST /v1/analyze"), CLASS_ANALYZE, 200
            )
        assert metrics.latency_dict()[CLASS_ANALYZE]["count"] == 8

    def test_unknown_class_lands_in_other(self):
        metrics = ServeMetrics()
        metrics.request_finished(metrics.request_started("GET /x"), "bogus", 200)
        assert metrics.latency_dict()["other"]["count"] == 1


class TestStatsDocument:
    def test_schema_and_shape(self):
        metrics = ServeMetrics()
        document = metrics.stats_dict(resident_programs=2, cache={"hits": 5})
        assert document["schema"] == SERVE_STATS_SCHEMA
        assert document["resident_programs"] == 2
        assert document["cache"] == {"hits": 5}
        assert document["requests"]["responses_5xx"] == 0
        assert document["session"]["edit_scoped_ratio"] is None
        for cls in ("analyze", "query", "lint", "other"):
            assert document["latency"][cls]["count"] == 0
            assert document["latency"][cls]["p99_ms"] is None

    def test_scoped_ratio(self):
        metrics = ServeMetrics()
        metrics.post_edit_solves = 10
        metrics.scoped_post_edit_solves = 9
        document = metrics.stats_dict(resident_programs=0)
        assert document["session"]["edit_scoped_ratio"] == 0.9

    def test_latency_percentiles_populated(self):
        metrics = ServeMetrics()
        for _ in range(5):
            metrics.request_finished(
                metrics.request_started("POST /v1/query"), CLASS_QUERY, 200
            )
        latency = metrics.stats_dict(resident_programs=0)["latency"]["query"]
        assert latency["count"] == 5
        assert latency["p50_ms"] is not None
        assert latency["p99_ms"] >= latency["p50_ms"]
        assert latency["max_ms"] >= latency["p99_ms"]
