"""ServeSession: document lifecycle, query parsing, scoped invalidation.

The session is the single implementation behind both wire surfaces, so
this is where the incremental contract is pinned at the Python level:
versions only move forward, solutions are tagged with the version they
solved, an edit to one procedure body re-solves only that procedure,
and an environment edit (new global, changed signature) honestly
re-solves everything.
"""

import pytest

from repro.frontend.diagnostics import MiniCError
from repro.names.object_names import ObjectName
from repro.serve import QueryError, ServeSession, parse_object_name

PROGRAM = """
int g;
int h;
int *p;

void helper(void) {
    p = &h;
}

void main(void) {
    p = &g;
    helper();
}
"""

#: Same program with one extra statement in ``helper`` only.
PROGRAM_HELPER_EDIT = PROGRAM.replace("p = &h;", "p = &h;\n    p = &h;")

#: Same program with a new global — an environment edit.
PROGRAM_ENV_EDIT = PROGRAM.replace("int g;", "int g;\nint g2;")


@pytest.fixture()
def session(tmp_path):
    return ServeSession(k=3, cache_dir=str(tmp_path / "cache"))


class TestParseObjectName:
    def test_plain_variable(self):
        assert parse_object_name("p") == ObjectName.variable("p")

    def test_deref(self):
        assert parse_object_name("*p") == ObjectName.variable("p").deref()

    def test_double_deref(self):
        assert (
            parse_object_name("**p")
            == ObjectName.variable("p").deref().deref()
        )

    def test_arrow(self):
        expected = ObjectName.variable("p").deref().field("next")
        assert parse_object_name("p->next") == expected

    def test_dot(self):
        assert parse_object_name("g.f") == ObjectName.variable("g").field("f")

    def test_deref_binds_last(self):
        # ``*p->next`` reads as *(p->next), matching C precedence.
        expected = ObjectName.variable("p").deref().field("next").deref()
        assert parse_object_name("*p->next") == expected

    def test_whitespace_tolerated(self):
        assert parse_object_name("  * p ") == ObjectName.variable("p").deref()

    @pytest.mark.parametrize(
        "expr", ["", "*", "->x", "p->", "p.", "p[0]", "p+q", "&p", "3p"]
    )
    def test_junk_raises(self, expr):
        with pytest.raises(QueryError):
            parse_object_name(expr)


class TestDocumentLifecycle:
    def test_upsert_states(self, session):
        assert session.upsert("a.c", PROGRAM) == "opened"
        assert session.upsert("a.c", PROGRAM) == "unchanged"
        assert session.upsert("a.c", PROGRAM_HELPER_EDIT) == "changed"
        assert session.metrics.edits_total == 2
        assert session.metrics.noop_changes == 1

    def test_versions_move_forward(self, session):
        session.upsert("a.c", PROGRAM)
        assert session.documents["a.c"].version == 0
        session.upsert("a.c", PROGRAM_HELPER_EDIT)
        assert session.documents["a.c"].version == 1
        session.upsert("a.c", PROGRAM)
        assert session.documents["a.c"].version == 2

    def test_unknown_document_raises(self, session):
        with pytest.raises(QueryError):
            session.query("missing.c", 1)

    def test_close(self, session):
        session.upsert("a.c", PROGRAM)
        assert session.close("a.c") is True
        assert session.close("a.c") is False
        assert session.metrics.documents_closed == 1
        with pytest.raises(QueryError):
            session.document("a.c")

    def test_parse_error_recorded_and_raised(self, session):
        session.upsert("bad.c", "void main(void) { this is not C }")
        with pytest.raises(MiniCError):
            session.ensure_solved("bad.c")
        doc = session.documents["bad.c"]
        assert doc.parse_error is not None
        assert doc.last_solve["status"] == "parse_error"
        # Asking again doesn't re-parse (version unchanged) but still
        # reports the failure.
        with pytest.raises(MiniCError):
            session.query("bad.c", 1)

    def test_parse_error_clears_on_fix(self, session):
        session.upsert("a.c", "void main(void) { ___ }")
        with pytest.raises(MiniCError):
            session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM)
        doc = session.ensure_solved("a.c")
        assert doc.parse_error is None
        assert doc.solution is not None


class TestQueries:
    def test_pair_query_true(self, session):
        session.upsert("a.c", PROGRAM)
        # Line 11 is ``p = &g;`` inside main.
        answer = session.query("a.c", 11, "*p", "g")
        assert answer["may_alias"] is True
        assert answer["matched_nodes"] >= 1
        assert answer["complete"] is True
        assert answer["version"] == 0

    def test_pair_query_unmatched_line(self, session):
        session.upsert("a.c", PROGRAM)
        answer = session.query("a.c", 999, "*p", "g")
        assert answer["may_alias"] is None
        assert answer["matched_nodes"] == 0

    def test_pair_listing(self, session):
        session.upsert("a.c", PROGRAM)
        answer = session.query("a.c", 11)
        assert any("*p" in pair and "g" in pair for pair in answer["pairs"])

    def test_half_pair_rejected(self, session):
        session.upsert("a.c", PROGRAM)
        with pytest.raises(QueryError):
            session.query("a.c", 11, "*p", None)

    def test_query_counts(self, session):
        session.upsert("a.c", PROGRAM)
        session.query("a.c", 11)
        session.query("a.c", 12)
        assert session.metrics.queries_total == 2


class TestScopedInvalidation:
    def test_first_solve_is_not_post_edit(self, session):
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        assert session.metrics.solves_total == 1
        assert session.metrics.post_edit_solves == 0
        assert "scoped" not in session.documents["a.c"].last_solve

    def test_body_edit_resolves_only_that_proc(self, session):
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM_HELPER_EDIT)
        doc = session.ensure_solved("a.c")
        assert doc.last_solve["scoped"] is True
        assert doc.last_solve["edited_procs"] == ["helper"]
        assert doc.last_solve["resolved_procs"] == ["helper"]
        assert doc.last_solve["replayed_procs"] >= 1
        assert session.metrics.post_edit_solves == 1
        assert session.metrics.scoped_post_edit_solves == 1

    def test_env_edit_marks_everything_edited(self, session):
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM_ENV_EDIT)
        doc = session.ensure_solved("a.c")
        # A new global rekeys every procedure: the solve is still
        # "scoped" (misses ⊆ edited) because *everything* counts as
        # edited — the honest accounting for environment edits.
        assert set(doc.last_solve["edited_procs"]) >= {"helper", "main"}
        assert doc.last_solve["scoped"] is True

    def test_noop_reupsert_does_not_resolve(self, session):
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        assert session.metrics.solves_total == 1

    def test_lint_memoized_per_version(self, session):
        session.upsert("a.c", PROGRAM)
        first = session.lint("a.c")
        assert session.lint("a.c") is first
        assert session.metrics.lint_runs_total == 1
        session.upsert("a.c", PROGRAM_HELPER_EDIT)
        second = session.lint("a.c")
        assert second is not first
        assert session.metrics.lint_runs_total == 2

    def test_stats_dict_shape(self, session):
        session.upsert("a.c", PROGRAM)
        session.ensure_solved("a.c")
        document = session.stats_dict()
        assert document["schema"] == "repro-serve-stats/1"
        assert document["resident_programs"] == 1
        assert document["cache"]["misses"] >= 1
        assert document["engine"] is not None
