"""Unit tests for the Weihl-backed solution adapter."""

import pytest

from repro import parse_and_analyze, build_icfg
from repro.baselines import weihl_aliases
from repro.clients import ReachingDefinitions, WeihlBackedSolution
from repro.names import ObjectName


@pytest.fixture(scope="module")
def setup():
    source = """
    int *p, *q, a, b;
    int main() { p = &a; q = p; b = *q; return 0; }
    """
    analyzed = parse_and_analyze(source)
    icfg = build_icfg(analyzed)
    weihl = weihl_aliases(analyzed, icfg, k=2)
    return analyzed, icfg, WeihlBackedSolution(analyzed, icfg, weihl, k=2)


class TestAdapter:
    def test_flow_insensitive_everywhere(self, setup):
        _, icfg, adapter = setup
        first = icfg.nodes[0]
        last = icfg.nodes[-1]
        assert adapter.may_alias(first) == adapter.may_alias(last)

    def test_alias_query(self, setup):
        _, _, adapter = setup
        assert adapter.alias_query(
            0, ObjectName("p").deref(), ObjectName("q").deref()
        )
        assert not adapter.alias_query(0, ObjectName("a"), ObjectName("b"))

    def test_may_alias_names(self, setup):
        _, _, adapter = setup
        names = adapter.may_alias_names(0, ObjectName("p").deref())
        assert ObjectName("q").deref() in names

    def test_clients_accept_adapter(self, setup):
        _, _, adapter = setup
        pairs = list(ReachingDefinitions(adapter).def_use_pairs())
        assert pairs  # b = *q reads through the alias web
