"""Pin the read/write sets :func:`node_access` reports per NodeKind.

Regression tests for the PR 3 fix: predicate guards (including ``?:``)
and ``++``/``--`` updates must surface their reads, and every read set
is closed under deref prefixes (reading ``*p`` reads ``p``)."""

from __future__ import annotations

import pytest

from repro.clients.accesses import Access, close_reads, deref_prefixes, node_access
from repro.frontend.semantics import parse_and_analyze
from repro.icfg.builder import build_icfg
from repro.icfg.ir import NodeKind, OtherStmt
from repro.names.object_names import ObjectName

SOURCE = """\
int *g;
int x;

void callee(int *q, int v) {
    *q = v;
}

int main() {
    int *p;
    int y;
    p = &x;
    *p = 3;
    if (*p > 0) { y = 1; }
    callee(p, y);
    y = y ? 1 : 2;
    y++;
    return 0;
}
"""


@pytest.fixture(scope="module")
def icfg():
    return build_icfg(parse_and_analyze(SOURCE))


def _nodes(icfg, kind, describe=None):
    out = []
    for node in icfg.nodes:
        if node.kind is not kind:
            continue
        if describe is not None:
            if not isinstance(node.stmt, OtherStmt) or node.stmt.describe != describe:
                continue
        out.append(node)
    return out


def test_structural_nodes_access_nothing(icfg):
    for kind in (NodeKind.ENTRY, NodeKind.EXIT, NodeKind.RETURN):
        for node in _nodes(icfg, kind):
            assert node_access(node) == Access(), f"{kind} should access nothing"


def test_assign_node_writes_lhs(icfg):
    p = ObjectName("main::p")
    assigns = [
        n
        for n in _nodes(icfg, NodeKind.ASSIGN)
        if n.proc == "main" and n.stmt.lhs == p
    ]
    assert assigns, "p = &x should lower to an ASSIGN node"
    access = node_access(assigns[0])
    assert access.writes == (p,)
    assert access.reads == ()  # &x reads nothing


def test_deref_write_reads_pointer(icfg):
    p = ObjectName("main::p")
    star_p = p.deref()
    stores = [
        n
        for n in _nodes(icfg, NodeKind.OTHER, "scalar-assign")
        if n.proc == "main" and star_p in node_access(n).writes
    ]
    assert stores, "*p = 3 should lower to a scalar-assign OTHER node"
    access = node_access(stores[0])
    assert p in access.reads, "writing *p reads p"
    assert p in access.dereferenced()


def test_if_predicate_reads_guard_closed(icfg):
    p = ObjectName("main::p")
    preds = [n for n in _nodes(icfg, NodeKind.PREDICATE, "if") if n.proc == "main"]
    assert preds
    access = node_access(preds[0])
    assert p.deref() in access.reads, "guard reads *p"
    assert p in access.reads, "deref-prefix closure: guard also reads p"
    assert access.writes == ()


def test_conditional_predicate_reads_guard(icfg):
    # PR 3 fix: `y = y ? 1 : 2` previously recorded no reads at all.
    y = ObjectName("main::y")
    preds = [n for n in _nodes(icfg, NodeKind.PREDICATE, "?:") if n.proc == "main"]
    assert preds, "?: should lower to a PREDICATE node"
    assert y in node_access(preds[0]).reads


def test_incr_node_reads_and_writes_operand(icfg):
    # PR 3 fix: `y++` previously recorded no accesses at all.
    y = ObjectName("main::y")
    incrs = [n for n in _nodes(icfg, NodeKind.OTHER, "++") if n.proc == "main"]
    assert incrs, "y++ should lower to an OTHER node"
    access = node_access(incrs[0])
    assert access.writes == (y,)
    assert y in access.reads


def test_call_node_reads_operands_and_scalars(icfg):
    p = ObjectName("main::p")
    y = ObjectName("main::y")
    calls = [n for n in _nodes(icfg, NodeKind.CALL) if n.callee == "callee"]
    assert calls
    access = node_access(calls[0])
    assert p in access.reads, "pointer argument is read"
    assert y in access.reads, "scalar argument is read"
    assert access.writes == ()


def test_close_reads_dedups_and_orders():
    p = ObjectName("main::p")
    pp = p.deref().deref()
    closed = close_reads((pp, p))
    assert closed == (pp, p, p.deref())
    assert deref_prefixes(pp) == (p, p.deref())
