"""Unit tests for alias-aware reaching definitions ([PRL91] direction)."""

import pytest

from repro import analyze_source
from repro.clients import ReachingDefinitions
from repro.names import ObjectName


def analyze(source, k=2):
    solution = analyze_source(source, k=k)
    return solution, ReachingDefinitions(solution)


def defs_reaching(rd, node, name):
    return {
        d
        for d in rd.reaching(node)
        if str(d.name) == name
    }


class TestBasics:
    def test_definition_reaches_use(self):
        sol, rd = analyze("int x, y; int main() { x = 1; y = x; return 0; }")
        pairs = list(rd.def_use_pairs())
        assert any(
            str(p.definition.name) == "x" and str(p.use_name) == "x" for p in pairs
        )

    def test_redefinition_kills(self):
        sol, rd = analyze(
            "int x, y; int main() { x = 1; x = 2; y = x; return 0; }"
        )
        use_node = max(
            (
                n
                for n in sol.icfg.nodes
                if n.stmt is not None and getattr(n.stmt, "reads", ())
            ),
            key=lambda n: n.nid,
        )
        x_defs = defs_reaching(rd, use_node, "x")
        assert len(x_defs) == 1  # only the second definition survives

    def test_branches_merge_definitions(self):
        sol, rd = analyze(
            """
            int x, y, c;
            int main() {
                if (c) { x = 1; } else { x = 2; }
                y = x;
                return 0;
            }
            """
        )
        use_node = max(
            (
                n
                for n in sol.icfg.nodes
                if n.stmt is not None and "y" in [str(w) for w in getattr(n.stmt, "writes", ())]
            ),
            key=lambda n: n.nid,
        )
        assert len(defs_reaching(rd, use_node, "x")) == 2

    def test_write_through_pointer_is_may_def(self):
        sol, rd = analyze(
            """
            int *p, a, b, c;
            int main() {
                a = 1;
                if (c) { p = &a; } else { p = &b; }
                *p = 2;
                b = a;
                return 0;
            }
            """
        )
        pairs = list(rd.def_use_pairs())
        # The *p store may define a; the a=1 def also still reaches
        # (the ambiguous write kills nothing).
        a_defs = {
            str(p.definition.name)
            for p in pairs
            if str(p.use_name) == "a"
        }
        assert "a" in a_defs
        assert "*p" in a_defs or any(p for p in pairs if p.definition.may_only)

    def test_ambiguous_write_does_not_kill(self):
        sol, rd = analyze(
            """
            int *p, a, b;
            int main() { p = &a; a = 1; *p = 2; b = a; return 0; }
            """
        )
        use_node = max(
            (
                n
                for n in sol.icfg.nodes
                if n.stmt is not None and "b" in [str(w) for w in getattr(n.stmt, "writes", ())]
            ),
            key=lambda n: n.nid,
        )
        assert defs_reaching(rd, use_node, "a")


class TestInterprocedural:
    def test_callee_global_write_generates_at_call(self):
        sol, rd = analyze(
            """
            int g, y;
            void set(void) { g = 5; }
            int main() { set(); y = g; return 0; }
            """
        )
        pairs = list(rd.def_use_pairs())
        g_uses = [p for p in pairs if str(p.use_name) == "g"]
        assert g_uses, "use of g must see a definition from the call"

    def test_transitive_callee_writes(self):
        sol, rd = analyze(
            """
            int g, y;
            void inner(void) { g = 5; }
            void outer(void) { inner(); }
            int main() { outer(); y = g; return 0; }
            """
        )
        assert any(str(p.use_name) == "g" for p in rd.def_use_pairs())


class TestDeadStores:
    def test_unused_definition_reported(self):
        sol, rd = analyze("int x; int main() { x = 1; return 0; }")
        dead = [str(d.name) for d in rd.dead_definitions()]
        assert "x" in dead

    def test_used_definition_not_dead(self):
        sol, rd = analyze("int x, y; int main() { x = 1; y = x; return 0; }")
        dead_x = [
            d for d in rd.dead_definitions() if str(d.name) == "x"
        ]
        assert not dead_x
