"""Unit tests for conflict detection ([LH88] via may-alias)."""

import pytest

from repro import analyze_source
from repro.clients import ConflictAnalysis, node_access
from repro.icfg import NodeKind


def scalar_assign_nodes(solution):
    return [
        node
        for node in solution.icfg.nodes
        if node.kind is NodeKind.OTHER
        and node.stmt is not None
        and getattr(node.stmt, "writes", ())
    ]


class TestAccessExtraction:
    def test_pointer_assign_access(self):
        sol = analyze_source("int *p, v; int main() { p = &v; return 0; }")
        node = next(n for n in sol.icfg.nodes if n.is_pointer_assignment)
        access = node_access(node)
        assert [str(w) for w in access.writes] == ["p"]
        assert access.reads == ()  # &v reads nothing

    def test_copy_reads_rhs(self):
        sol = analyze_source("int *p, *q, v; int main() { q = &v; p = q; return 0; }")
        node = next(
            n
            for n in sol.icfg.nodes
            if n.is_pointer_assignment and str(n.stmt.lhs) == "p"
        )
        access = node_access(node)
        assert [str(r) for r in access.reads] == ["q"]

    def test_scalar_store_through_pointer_recorded(self):
        sol = analyze_source("int *p, v; int main() { p = &v; *p = 3; return 0; }")
        stores = scalar_assign_nodes(sol)
        assert stores, "scalar store node missing"
        access = node_access(stores[0])
        assert [str(w) for w in access.writes] == ["*p"]

    def test_scalar_read_names_recorded(self):
        sol = analyze_source(
            "int *p, v, w; int main() { p = &v; w = *p + v; return 0; }"
        )
        stores = scalar_assign_nodes(sol)
        reads = {str(r) for r in node_access(stores[-1]).reads}
        assert "*p" in reads
        assert "v" in reads


class TestConflicts:
    def _stores(self, source, k=2):
        sol = analyze_source(source, k=k)
        return ConflictAnalysis(sol), scalar_assign_nodes(sol)

    def test_disjoint_targets_no_conflict(self):
        analysis, stores = self._stores(
            """
            int *p, *q, a, b;
            int main() { p = &a; q = &b; *p = 1; *q = 2; return 0; }
            """
        )
        s1, s2 = stores
        assert analysis.reorderable(s1, s2)

    def test_may_aliased_targets_conflict(self):
        analysis, stores = self._stores(
            """
            int *p, *q, a, b;
            int main() {
                p = &a;
                q = p;
                *p = 1;
                *q = 2;
                return 0;
            }
            """
        )
        s1, s2 = stores
        conflict = analysis.conflict(s1, s2)
        assert conflict is not None
        assert conflict.kind == "write-write"

    def test_write_read_conflict(self):
        analysis, stores = self._stores(
            """
            int *p, a, b;
            int main() { p = &a; *p = 1; b = a; return 0; }
            """
        )
        writer, reader = stores
        conflict = analysis.conflict(writer, reader)
        assert conflict is not None
        assert conflict.kind == "write-read"

    def test_same_name_always_conflicts(self):
        analysis, stores = self._stores(
            "int x; int main() { x = 1; x = 2; return 0; }"
        )
        s1, s2 = stores
        assert not analysis.reorderable(s1, s2)

    def test_prefix_write_conflicts_with_field_access(self):
        analysis_sol = analyze_source(
            """
            struct pair { int a; int b; };
            struct pair s, t;
            int main() { s = t; s.a = 1; return 0; }
            """
        )
        analysis = ConflictAnalysis(analysis_sol)
        stores = scalar_assign_nodes(analysis_sol)
        # struct copy has no pointer fields -> lowered as struct-assign
        # OTHER node without writes; only s.a = 1 records.  Check the
        # overlap predicate directly instead.
        from repro.names import ObjectName

        node = stores[-1]
        assert analysis.names_may_overlap(
            ObjectName("s"), ObjectName("s").field("a"), node
        )

    def test_conflicts_in_enumerates(self):
        analysis, stores = self._stores(
            """
            int *p, a, b;
            int main() { p = &a; *p = 1; a = 2; b = 3; return 0; }
            """
        )
        conflicts = list(analysis.conflicts_in(stores))
        assert len(conflicts) >= 1
