"""Unit tests for MOD/REF side-effect analysis ([Ban79] via aliases)."""

import pytest

from repro import analyze_source
from repro.clients.modref import ModRefAnalysis
from repro.names import ObjectName


def modref(source, k=2):
    solution = analyze_source(source, k=k)
    return ModRefAnalysis(solution), solution


class TestDirectEffects:
    def test_global_write_in_mod(self):
        analysis, _ = modref(
            "int g; void set(void) { g = 1; } int main() { set(); return 0; }"
        )
        assert ObjectName("g") in analysis.mod("set")

    def test_global_read_in_ref(self):
        analysis, _ = modref(
            "int g, h; void get(void) { h = g; } int main() { get(); return 0; }"
        )
        assert ObjectName("g") in analysis.ref("get")

    def test_local_effects_not_observable(self):
        analysis, _ = modref(
            "void f(void) { int x; x = 1; } int main() { f(); return 0; }"
        )
        assert analysis.mod("f") == set()

    def test_pointer_store_widened_by_aliases(self):
        analysis, _ = modref(
            """
            int g;
            int *p;
            void store(void) { *p = 5; }
            int main() { p = &g; store(); return 0; }
            """
        )
        assert ObjectName("g") in analysis.mod("store")


class TestTransitiveEffects:
    def test_effects_propagate_up_call_graph(self):
        analysis, _ = modref(
            """
            int g;
            void inner(void) { g = 1; }
            void outer(void) { inner(); }
            int main() { outer(); return 0; }
            """
        )
        assert ObjectName("g") in analysis.mod("outer")
        assert ObjectName("g") in analysis.mod("main")

    def test_recursive_procedures_converge(self):
        analysis, _ = modref(
            """
            int g;
            void rec(int d) { if (d > 0) { g = d; rec(d - 1); } }
            int main() { rec(3); return 0; }
            """
        )
        assert ObjectName("g") in analysis.mod("rec")

    def test_call_site_mod(self):
        analysis, sol = modref(
            """
            int g;
            void set(void) { g = 1; }
            int main() { set(); return 0; }
            """
        )
        call = next(iter(sol.icfg.call_sites("set")))
        assert ObjectName("g") in analysis.call_site_mod(call)


class TestPurity:
    def test_pure_procedure_detected(self):
        analysis, _ = modref(
            """
            int g;
            int read_only(void) { return g; }
            void writer(void) { g = 2; }
            int main() { writer(); return read_only(); }
            """
        )
        pure = set(analysis.pure_procedures())
        assert "read_only" in pure
        assert "writer" not in pure

    def test_pointer_returning_not_pure(self):
        # Writing the return slot counts as an observable effect.
        analysis, _ = modref(
            """
            int g;
            int *giver(void) { return &g; }
            int main() { giver(); return 0; }
            """
        )
        assert "giver" not in set(analysis.pure_procedures())
