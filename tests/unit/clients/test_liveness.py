"""Unit tests for alias-aware liveness."""

import pytest

from repro import analyze_source
from repro.clients.liveness import LiveNames
from repro.names import ObjectName


def analyze(source, k=2):
    solution = analyze_source(source, k=k)
    return solution, LiveNames(solution)


def node_writing(solution, name_text):
    candidates = [
        n
        for n in solution.icfg.nodes
        if n.stmt is not None
        and name_text in [str(w) for w in getattr(n.stmt, "writes", ())]
    ]
    assert candidates, f"no node writes {name_text}"
    return max(candidates, key=lambda n: n.nid)


class TestBasics:
    def test_used_variable_is_live_before_use(self):
        sol, ln = analyze("int x, y; int main() { x = 1; y = x; return 0; }")
        write_x = min(
            (n for n in sol.icfg.nodes if getattr(n.stmt, "writes", ())),
            key=lambda n: n.nid,
        )
        assert ObjectName("x") in ln.live_out(write_x)

    def test_dead_after_last_use(self):
        sol, ln = analyze("int x, y; int main() { x = 1; y = x; return 0; }")
        write_y = node_writing(sol, "y")
        assert ObjectName("x") not in ln.live_out(write_y)

    def test_redefined_before_use_not_live(self):
        sol, ln = analyze(
            "int x, y; int main() { x = 1; x = 2; y = x; return 0; }"
        )
        first = min(
            (n for n in sol.icfg.nodes if getattr(n.stmt, "writes", ())),
            key=lambda n: n.nid,
        )
        # x's first value can never be read: killed by x = 2.
        assert ObjectName("x") not in ln.live_out(first)

    def test_loop_keeps_variable_live(self):
        sol, ln = analyze(
            """
            int x, s;
            int main() {
                int i;
                x = 1;
                for (i = 0; i < 3; i = i + 1) { s = s + x; }
                return s;
            }
            """
        )
        write_x = min(
            (
                n
                for n in sol.icfg.nodes
                if "x" in [str(w) for w in getattr(n.stmt, "writes", ())]
            ),
            key=lambda n: n.nid,
        )
        assert ObjectName("x") in ln.live_out(write_x)


class TestPointerAwareness:
    def test_read_through_pointer_keeps_target_live(self):
        sol, ln = analyze(
            """
            int *p, v, w;
            int main() { v = 1; p = &v; w = *p; return w; }
            """
        )
        write_v = min(
            (
                n
                for n in sol.icfg.nodes
                if "v" in [str(w) for w in getattr(n.stmt, "writes", ())]
            ),
            key=lambda n: n.nid,
        )
        assert ObjectName("v") in ln.live_out(write_v)

    def test_ambiguous_write_does_not_kill(self):
        sol, ln = analyze(
            """
            int *p, a, b, c;
            int main() {
                a = 1;
                if (c) { p = &a; } else { p = &b; }
                *p = 2;
                return a;
            }
            """
        )
        write_a = min(
            (
                n
                for n in sol.icfg.nodes
                if "a" in [str(w) for w in getattr(n.stmt, "writes", ())]
            ),
            key=lambda n: n.nid,
        )
        # `*p = 2` may not overwrite a, and `return a` reads it.
        assert ObjectName("a") in ln.live_out(write_a)


class TestDeadStores:
    def test_unobservable_store_reported(self):
        sol, ln = analyze("int x; int main() { x = 5; return 0; }")
        dead = list(ln.dead_stores())
        assert any(
            "x" in [str(w) for w in getattr(n.stmt, "writes", ())] for n in dead
        )

    def test_store_read_through_alias_not_dead(self):
        sol, ln = analyze(
            """
            int *p, v;
            int main() { p = &v; *p = 5; return v; }
            """
        )
        dead = list(ln.dead_stores())
        for node in dead:
            writes = [str(w) for w in getattr(node.stmt, "writes", ())]
            assert "*p" not in writes
