"""Shared fixtures for the benchmark harness.

Suite programs are generated at a scale factor (default 0.15 of the
paper's reported ICFG node counts) so a full benchmark run finishes in
minutes on CPython.  Set ``REPRO_BENCH_SCALE=1.0`` for paper-sized
programs.  All comparisons in EXPERIMENTS.md are shape comparisons
(who wins, by what factor), which the scale does not change.
"""

import pytest

from repro.bench import bench_scale


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


def pytest_report_header(config):
    return f"repro benchmark scale: {bench_scale()} (REPRO_BENCH_SCALE to change)"
