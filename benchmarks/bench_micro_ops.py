"""Micro-benchmarks for the analysis's hot primitives.

These are statistical (many rounds) and guard against regressions in
the operations §4 requires to be (amortized) constant time: may-hold
lookup/insert, name k-limiting and alias-pair canonicalization.
"""

import pytest

from repro.core import CLEAN, MayHoldStore
from repro.core import assumptions
from repro.names import AliasPair, DEREF, ObjectName, k_limit
from repro.programs.fixtures import FIGURE1


@pytest.fixture()
def names():
    return [
        ObjectName(f"v{i}", (DEREF, "next") * (i % 3), truncated=False)
        for i in range(64)
    ]


def test_alias_pair_construction(benchmark, names):
    def run():
        total = 0
        for i, a in enumerate(names):
            b = names[(i * 7 + 3) % len(names)]
            total += hash(AliasPair(a, b))
        return total

    benchmark(run)


def test_k_limit_throughput(benchmark):
    deep = [ObjectName("p", (DEREF, "next") * depth) for depth in range(1, 12)]

    def run():
        return [k_limit(name, 3) for name in deep]

    benchmark(run)


def test_store_insert_lookup(benchmark, names):
    def run():
        store = MayHoldStore()
        for i, a in enumerate(names):
            pair = AliasPair(a, names[(i + 1) % len(names)])
            store.make_true(i % 10, assumptions.EMPTY, pair, CLEAN)
        hits = 0
        for i, a in enumerate(names):
            pair = AliasPair(a, names[(i + 1) % len(names)])
            hits += store.holds(i % 10, assumptions.EMPTY, pair)
        return hits

    benchmark(run)


def test_end_to_end_figure1(benchmark):
    """Whole-pipeline latency on the paper's running example."""
    from repro import analyze_source

    def run():
        return analyze_source(FIGURE1, k=3)

    benchmark(run)
