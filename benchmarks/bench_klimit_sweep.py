"""k-limit sweep (paper §5, footnote 16: k = 1..4 examined in [Lan92]).

Measures how the k-limit affects fact counts, precision and time on
the hand-written fixture programs.  Expected shape: larger k tracks
deeper chains (more facts, more time); %YES and alias counts move with
the truncation frontier.

Output: ``benchmarks/out/klimit.txt``.
"""

import pytest

from repro.bench import analyze_counts, format_table, write_report
from repro.programs.fixtures import EXPR_TREE, FIGURE1, LINKED_LIST, MATRIX_SWAP

PROGRAMS = {
    "figure1": FIGURE1,
    "linked_list": LINKED_LIST,
    "expr_tree": EXPR_TREE,
    "matrix_swap": MATRIX_SWAP,
}
KS = (1, 2, 3, 4)

_ROWS: dict[tuple[str, int], tuple[int, int, float, float]] = {}


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_klimit(benchmark, name, k):
    source = PROGRAMS[name]

    def run():
        return analyze_counts(source, k=k, max_facts=1_500_000)

    solution = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = solution.stats()
    _ROWS[(name, k)] = (
        stats.may_hold_facts,
        stats.node_alias_count,
        stats.percent_yes,
        stats.analysis_seconds,
    )


def test_klimit_report(benchmark):
    if not _ROWS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in sorted(PROGRAMS):
        for k in KS:
            facts, pairs, yes, secs = _ROWS[(name, k)]
            rows.append((name, k, facts, pairs, f"{yes:.0f}", f"{secs:.2f}s"))
    table = format_table(
        "k-limit sweep — facts/precision/time vs k",
        ("program", "k", "facts", "(node,alias)", "%YES", "time"),
        rows,
    )
    path = write_report("klimit.txt", table)
    print(f"\n{table}\nwritten to {path}")
    # Shape: deeper k never reduces the tracked fact count on the
    # chain-heavy fixtures.
    for name in sorted(PROGRAMS):
        assert _ROWS[(name, 1)][0] > 0
