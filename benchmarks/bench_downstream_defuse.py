"""Downstream precision: def-use pairs under each alias analysis.

The paper's introduction motivates may-alias precision by its effect on
"the precision of various compile-time interprocedural analyses
[Ca188, CK89, PRL91]".  This benchmark quantifies that: the same
alias-aware reaching-definitions client ([PRL91] direction) runs once
with Landi/Ryder aliases and once with Weihl aliases; every extra
def-use pair under Weihl is a spurious dependence an optimizer must
respect.

Output: ``benchmarks/out/defuse.txt``.
"""

import pytest

from repro import analyze_program, parse_and_analyze
from repro.baselines import weihl_aliases
from repro.bench import format_table, write_report
from repro.clients import ReachingDefinitions, WeihlBackedSolution
from repro.icfg import build_icfg
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import ALL_FIXTURES

PROGRAMS = dict(ALL_FIXTURES)
PROGRAMS["synth_defuse"] = generate_program(
    ProgramSpec.for_target_nodes("synth_defuse", 220)
)

_ROWS: dict[str, tuple[int, int, int]] = {}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_defuse_program(benchmark, name):
    source = PROGRAMS[name]

    def run():
        analyzed = parse_and_analyze(source)
        icfg = build_icfg(analyzed)
        lr = analyze_program(analyzed, icfg, k=2)
        lr_pairs = sum(1 for _ in ReachingDefinitions(lr).def_use_pairs())
        weihl = weihl_aliases(analyzed, icfg, k=2)
        weihl_solution = WeihlBackedSolution(analyzed, icfg, weihl, k=2)
        weihl_pairs = sum(
            1 for _ in ReachingDefinitions(weihl_solution).def_use_pairs()
        )
        return len(icfg), lr_pairs, weihl_pairs

    nodes, lr_pairs, weihl_pairs = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[name] = (nodes, lr_pairs, weihl_pairs)
    assert weihl_pairs >= lr_pairs, "coarser aliases cannot remove def-use pairs"


def test_defuse_report(benchmark):
    if not _ROWS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in sorted(_ROWS):
        nodes, lr_pairs, weihl_pairs = _ROWS[name]
        ratio = weihl_pairs / max(1, lr_pairs)
        rows.append((name, nodes, lr_pairs, weihl_pairs, f"{ratio:.2f}x"))
    table = format_table(
        "Downstream precision — def-use pairs by alias provider",
        ("program", "nodes", "LR def-use", "Weihl def-use", "blowup"),
        rows,
        note="spurious pairs are dependences an optimizer must respect",
    )
    path = write_report("defuse.txt", table)
    print(f"\n{table}\nwritten to {path}")
