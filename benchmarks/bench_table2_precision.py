"""Table 2: precision of the may-alias solution, %YES_k with k = 3.

The paper reports, for 18 programs: ICFG node count, number of
(node, alias) facts, %YES_3 and analysis time.  Expected shape:

* most programs sit at or near %YES = 100 (few of the counted
  approximation sources fire),
* a minority of pointer-heavy programs drop well below (the paper saw
  10%-88% on 5 of 18), and
* alias counts grow superlinearly with program size.

Regenerate with::

    pytest benchmarks/bench_table2_precision.py --benchmark-only -q

Output table: ``benchmarks/out/table2.txt``.
"""

import pytest

from repro.bench import Measurement, format_table, measure, write_report
from repro.programs import TABLE2_PAPER, table2_suite

_RESULTS: dict[str, Measurement] = {}


@pytest.fixture(scope="module")
def programs(scale):
    return {m.name: m for m in table2_suite(scale=scale)}


@pytest.mark.parametrize("name", sorted(TABLE2_PAPER))
def test_table2_program(benchmark, programs, name):
    member = programs[name]

    def run():
        return measure(name, member.source, k=3, run_weihl=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = result
    assert 0.0 <= result.percent_yes <= 100.0


def test_table2_report(benchmark):
    if not _RESULTS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in sorted(_RESULTS, key=lambda n: _RESULTS[n].icfg_nodes):
        m = _RESULTS[name]
        paper_nodes, paper_aliases, paper_yes, paper_secs = TABLE2_PAPER[name]
        rows.append(
            (
                name,
                m.icfg_nodes,
                m.lr_node_aliases,
                f"{m.percent_yes:.0f}",
                f"{m.lr_seconds:.2f}s",
                paper_nodes,
                paper_aliases,
                paper_yes,
                f"{paper_secs}s",
            )
        )
    yes_values = [m.percent_yes for m in _RESULTS.values()]
    at_or_near_100 = sum(1 for y in yes_values if y >= 90.0)
    table = format_table(
        "Table 2 — precision of the may-alias solution (k = 3)",
        (
            "program",
            "nodes",
            "aliases",
            "%YES",
            "time",
            "paper nodes",
            "paper aliases",
            "paper %YES",
            "paper time",
        ),
        rows,
        note=(
            f"{at_or_near_100}/{len(yes_values)} programs at %YES >= 90 "
            "(paper: 13/18 at >= 88); scaled synthetic stand-ins, see "
            "DESIGN.md"
        ),
    )
    path = write_report("table2.txt", table)
    print(f"\n{table}\nwritten to {path}")
    # Shape: the suite must not be uniformly imprecise.
    assert at_or_near_100 >= len(yes_values) // 2
