"""Figure 4: the ``all-or-none(n)`` worst-case construction.

The paper's point: with no aliases on entry the precise solution has
Theta(n) program-point aliases, but if the (possibly erroneous) alias
``(*b, *d)`` holds before the loop, any safe approximate algorithm
reports Theta(n^3) — and that is the worst case for the Landi/Ryder
algorithm.  We reproduce the separation by analyzing the unseeded and
seeded variants across n and fitting the growth exponents.

Regenerate with::

    pytest benchmarks/bench_figure4_allornone.py --benchmark-only -q

Output: ``benchmarks/out/figure4.txt``.
"""

import math

import pytest

from repro.bench import analyze_counts, format_table, write_report
from repro.programs import all_or_none

SIZES = (2, 4, 8, 16)

_ROWS: dict[tuple[int, bool], tuple[int, int]] = {}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("seeded", (False, True), ids=("clean", "seeded"))
def test_allornone(benchmark, n, seeded):
    source = all_or_none(n, seed_alias=seeded)

    def run():
        return analyze_counts(source, k=3)

    solution = benchmark.pedantic(run, rounds=1, iterations=1)
    node_pairs = solution.stats().node_alias_count
    _ROWS[(n, seeded)] = (solution.stats().icfg_nodes, node_pairs)


def _growth_exponent(series):
    """Log-log slope between first and last points."""
    (n0, y0), (n1, y1) = series[0], series[-1]
    return math.log(y1 / y0) / math.log(n1 / n0)


def test_figure4_report(benchmark):
    if not _ROWS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    clean_series = []
    seeded_series = []
    for n in SIZES:
        nodes_c, pairs_c = _ROWS[(n, False)]
        nodes_s, pairs_s = _ROWS[(n, True)]
        clean_series.append((n, pairs_c))
        seeded_series.append((n, pairs_s))
        rows.append((n, nodes_c, pairs_c, pairs_s, f"{pairs_s / max(1, pairs_c):.1f}x"))
    clean_exp = _growth_exponent(clean_series)
    seeded_exp = _growth_exponent(seeded_series)
    table = format_table(
        "Figure 4 — all-or-none(n): Theta(n) vs Theta(n^3) blowup",
        ("n", "ICFG nodes", "clean (node,alias)", "seeded (node,alias)", "blowup"),
        rows,
        note=(
            f"growth exponents: clean ~ n^{clean_exp:.2f} (paper: n^1), "
            f"seeded ~ n^{seeded_exp:.2f} (paper: n^3)"
        ),
    )
    path = write_report("figure4.txt", table)
    print(f"\n{table}\nwritten to {path}")
    assert clean_exp < 1.6, "clean variant must stay near-linear"
    assert seeded_exp > 2.0, "seeded variant must blow up superquadratically"
