"""Table 1: Landi/Ryder vs Weihl program aliases (paper §5).

The paper compares program-alias counts and timings on nine C
programs; Weihl reports on average 30.7x as many aliases.  The suite
members here are synthetic stand-ins sized from the paper's programs
(see DESIGN.md §2); the expected *shape* is

* Weihl's count strictly dominates Landi/Ryder's on every program, and
* the ratio varies widely by program (the paper saw 1.2x to 176.7x).

Regenerate with::

    pytest benchmarks/bench_table1_weihl.py --benchmark-only -q

The paper-shaped table is written to ``benchmarks/out/table1.txt``.
"""

import pytest

from repro.bench import Measurement, format_table, measure, write_report
from repro.programs import TABLE1_AVERAGE_RATIO, TABLE1_PAPER, table1_suite

_RESULTS: dict[str, Measurement] = {}


@pytest.fixture(scope="module")
def programs(scale):
    return {m.name: m for m in table1_suite(scale=scale)}


@pytest.mark.parametrize("name", sorted(TABLE1_PAPER))
def test_table1_program(benchmark, programs, name):
    member = programs[name]

    def run():
        return measure(name, member.source, k=3, run_weihl=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = result
    # Shape assertions from the paper.
    assert result.weihl_aliases is not None
    assert result.weihl_aliases >= result.lr_program_aliases, (
        "Weihl's flow-insensitive closure must over-approximate"
    )


def test_table1_report(benchmark):
    """Write the paper-shaped table (runs after the rows above)."""
    if not _RESULTS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    ratios = []
    for name in sorted(_RESULTS):
        m = _RESULTS[name]
        paper_lines, paper_weihl, _, paper_lr, _, paper_ratio = TABLE1_PAPER[name]
        ratio = m.weihl_ratio or 0.0
        ratios.append(ratio)
        rows.append(
            (
                name,
                m.source_lines,
                m.weihl_aliases,
                f"{(m.weihl_seconds or 0.0):.2f}s",
                m.lr_program_aliases,
                f"{m.lr_seconds:.2f}s",
                f"{ratio:.1f}",
                f"{paper_ratio:.1f}",
            )
        )
    avg = sum(ratios) / len(ratios)
    table = format_table(
        "Table 1 — program aliases: Weihl [Wei80] vs Landi/Ryder",
        (
            "program",
            "lines",
            "Weihl",
            "W time",
            "LR",
            "LR time",
            "W/LR",
            "paper W/LR",
        ),
        rows,
        note=(
            f"measured average Weihl/LR ratio: {avg:.1f} "
            f"(paper average: {TABLE1_AVERAGE_RATIO}); synthetic stand-in "
            "programs, see DESIGN.md"
        ),
    )
    path = write_report("table1.txt", table)
    print(f"\n{table}\nwritten to {path}")
    assert avg > 1.0, "Weihl must over-approximate on average"
