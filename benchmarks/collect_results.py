#!/usr/bin/env python3
"""Assemble benchmark outputs into the tracked result files.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py              # every section
    python benchmarks/collect_results.py --sections pr5
    python benchmarks/collect_results.py --sections tables,pr1 --seeds 10

Sections (each tolerates missing inputs and failures in the others):

* ``tables`` — embed ``benchmarks/out/*.txt`` into EXPERIMENTS.md.
* ``pr1`` — ``BENCH_PR1.json``: deduplicated worklist vs seed
  discipline on the largest scaling fixture.
* ``pr2`` — ``BENCH_PR2.json``: the tracked difftest sweep.
* ``pr3`` — ``BENCH_PR3.json``: lint layer on the scaling fixture.
* ``pr5`` — ``BENCH_PR5.json``: the parallel/cache numbers — difftest
  sweep serial vs ``--jobs 4`` and cold vs warm cache, the scale
  fixture solved serially vs slice-parallel and cold vs warm cache,
  plus the cross-job determinism check (stats documents must be equal
  after ``strip_timing``).  ``cpu_count`` is recorded with every row:
  on a single-core container the parallel rows are *expected* to show
  overhead, not speedup — the numbers are honest, not aspirational.
* ``pr6`` — ``BENCH_PR6.json``: the integer-ID kernel vs the reference
  engine on the scaling fixture (serial rows continuing the
  PR1/PR5 trajectory, >=10x acceptance), the cold-cache store-overhead
  pin (<=10% over the plain solve) and the per-phase cache counters
  (warm row must report hit rate exactly 1.0).
* ``pr7`` — ``BENCH_PR7.json``: the bottom-up summary engine vs the
  serial kernel on the scaling fixture at ``--jobs 1`` and ``--jobs
  4`` (oversubscribed past the core clamp so the worker pool really
  runs), the summary-vs-kernel work ratio in worklist pops, the
  byte-identical cross-job determinism pin, and the per-procedure
  cache cold -> warm roundtrip (warm phase must replay >= 90% of
  envelope lookups from cache).
* ``must`` — ``BENCH_PR8.json``: the must-alias under-approximation
  on scale240/scale800 — must solve wall clock vs the kernel may
  solve, whole-program [must, may] interval widths, and the lint
  possible -> definite upgrade counts with and without ``--must``.
* ``corpus`` — ``BENCH_PR9.json``: the real-code corpus under
  ``corpus/`` swept cold then warm against one cache — per-file wall
  times, LR vs Weihl untruncated alias counts and the precision ratio,
  coverage-ledger percentages and lowering-event counts ("no silent
  havoc"), synthesized stubs, and the warm-pass cache hit rate over
  cacheable (complete) files.
* ``serve`` — ``BENCH_PR10.json``: the incremental daemon under the
  seeded loadgen (``repro.serve.loadgen``) — cold first-solve wall
  times, warm mixed edit/query/lint latencies (p50/p99) and
  requests/sec, the failure ledger (must be all-zero), and the
  invalidation-scoping ratio (post-edit solves whose cache misses
  stayed inside the edited procedures; acceptance >= 90%).  All on
  whatever ``cpu_count`` reports — on a single core the daemon's
  one solver lane serializes solves, so throughput is honest, not
  aspirational.
"""

import argparse
import json
import os
import pathlib
import sys
import time
import traceback

MARKER = "## Appendix — measured tables (latest benchmark run)"
BENCH_SCHEMA = "repro-bench/1"
ALL_SECTIONS = (
    "tables",
    "pr1",
    "pr2",
    "pr3",
    "pr5",
    "pr6",
    "pr7",
    "must",
    "corpus",
    "serve",
)


def _ensure_src(root: pathlib.Path) -> None:
    if str(root / "src") not in sys.path:
        sys.path.insert(0, str(root / "src"))


def collect_tables(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    experiments = root / "EXPERIMENTS.md"
    tables = []
    for path in sorted(out_dir.glob("*.txt")):
        tables.append(f"### {path.name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    if not tables:
        print("no tables in benchmarks/out/; skipping EXPERIMENTS.md appendix")
        return
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    appendix = f"\n{MARKER}\n\n" + "\n".join(tables)
    experiments.write_text(text + appendix)
    print(f"embedded {len(tables)} tables into EXPERIMENTS.md")


def dedup_comparison(root: pathlib.Path, out_dir: pathlib.Path) -> dict:
    fragment = out_dir / "scaling_dedup.json"
    if fragment.exists():
        return json.loads(fragment.read_text())
    # No fragment — compute inline on the largest scaling fixture.
    _ensure_src(root)
    from repro.bench.runner import compare_dedup
    from repro.programs import ProgramSpec, generate_program

    from bench_scaling import SIZES  # noqa: E402  (benchmarks/ on sys.path)

    target = SIZES[-1]
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    return compare_dedup(f"scale{target}", source, k=3).as_dict()


def section_pr1(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    comparison = dedup_comparison(root, out_dir)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 1,
        "description": (
            "Deduplicated worklist vs seed discipline on the largest "
            "scaling fixture: pops must not increase and the may-alias "
            "sets must be node-identical."
        ),
        "dedup_vs_seed": comparison,
    }
    _write(root / "BENCH_PR1.json", payload)
    if not comparison.get("identical_may_alias", False):
        raise RuntimeError("dedup changed the may-alias sets — investigate")
    if comparison["pops_dedup"] > comparison["pops_seed"]:
        raise RuntimeError("dedup increased worklist pops — investigate")


def difftest_sweep(root: pathlib.Path, seeds: int, jobs: int = 1, cache_dir=None) -> dict:
    """The repro-difftest/1 stats document for one tracked sweep."""
    _ensure_src(root)
    from repro.difftest import DifftestConfig, run_difftest_suite

    config = DifftestConfig()
    suite = run_difftest_suite(
        range(1, seeds + 1),
        config,
        stop_on_failure=False,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return {
        "schema": "repro-difftest/1",
        "config": {
            "k": config.k,
            "draws": config.draws,
            "max_facts": config.max_facts,
            "seeds": seeds,
            "jobs": jobs,
        },
        "suite": suite.stats_dict(),
        "failures": [v.as_dict() for v in suite.failures],
    }


def section_pr2(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    sweep = difftest_sweep(root, seeds=args.seeds)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 2,
        "description": (
            "Differential-testing sweep: dynamic/exact oracle containment, "
            "Weihl coverage and budget degradation over generated programs "
            "(equivalent to `repro difftest --stats-json`)."
        ),
        "difftest": sweep,
    }
    _write(root / "BENCH_PR2.json", payload)
    if sweep["suite"]["failures"]:
        raise RuntimeError("difftest sweep found soundness violations — investigate")


def lint_scale(root: pathlib.Path, target: int) -> dict:
    """Lint the largest scaling fixture under LR with the Weihl
    comparison: wall time, findings per detector, FP delta."""
    _ensure_src(root)
    from repro.lint import run_lint
    from repro.programs import ProgramSpec, generate_program

    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    report = run_lint(source, provider="lr", compare_with="weihl", k=3)
    return {
        "program": f"scale{target}",
        "k": 3,
        "analysis_seconds": round(report.analysis_seconds, 3),
        "lint_seconds": round(report.lint_seconds, 3),
        "findings": len(report.findings),
        "findings_by_rule": dict(sorted(report.rule_counts().items())),
        "weihl_findings_by_rule": dict(sorted(report.comparison_counts.items())),
        "fp_delta": dict(sorted(report.fp_delta().items())),
        "fp_avoided": sum(d for d in report.fp_delta().values() if d > 0),
    }


def section_pr3(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    sweep = difftest_sweep(root, seeds=args.seeds)
    lint = lint_scale(root, args.scale_target)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 3,
        "description": (
            "Lint layer on the largest scaling fixture: detector wall "
            "time, findings per rule, and the LR-vs-Weihl false-positive "
            "delta (positive = findings the flow-insensitive baseline "
            "emits that flow sensitivity rules out).  Oracle-backed "
            "detector soundness rides in the difftest sweep's "
            "lint_soundness check."
        ),
        "lint_scale": lint,
        "lint_soundness": sweep["suite"]["checks"].get("lint_soundness", {}),
        "lint_suite": sweep["suite"].get("lint", {}),
    }
    _write(root / "BENCH_PR3.json", payload)
    if sweep["suite"]["failures"]:
        raise RuntimeError("difftest sweep found soundness violations — investigate")


def _difftest_rows(root: pathlib.Path, args, tmp: pathlib.Path) -> dict:
    """Serial vs parallel, then cold vs warm cache, for one sweep."""
    from repro.core.metrics import strip_timing

    seeds = args.pr5_seeds
    rows = []
    t0 = time.perf_counter()
    serial = difftest_sweep(root, seeds=seeds, jobs=1)
    rows.append(_sweep_row("serial", jobs=1, seconds=time.perf_counter() - t0, sweep=serial))

    t0 = time.perf_counter()
    parallel = difftest_sweep(root, seeds=seeds, jobs=args.jobs)
    rows.append(
        _sweep_row("parallel", jobs=args.jobs, seconds=time.perf_counter() - t0, sweep=parallel)
    )

    cache_dir = tmp / "difftest-cache"
    t0 = time.perf_counter()
    cold = difftest_sweep(root, seeds=seeds, jobs=args.jobs, cache_dir=cache_dir)
    rows.append(
        _sweep_row("cold-cache", jobs=args.jobs, seconds=time.perf_counter() - t0, sweep=cold)
    )
    t0 = time.perf_counter()
    warm = difftest_sweep(root, seeds=seeds, jobs=args.jobs, cache_dir=cache_dir)
    rows.append(
        _sweep_row("warm-cache", jobs=args.jobs, seconds=time.perf_counter() - t0, sweep=warm)
    )

    serial_doc = strip_timing(serial["suite"])
    parallel_doc = strip_timing(parallel["suite"])
    determinism_ok = serial_doc == parallel_doc
    warm_solves_skipped = warm["suite"]["cache"]["hit"]
    programs = warm["suite"]["programs"]
    return {
        "seeds": seeds,
        "rows": rows,
        "determinism_serial_equals_parallel": determinism_ok,
        "warm_cache_skip_ratio": round(warm_solves_skipped / max(1, programs), 4),
        "speedup_parallel_vs_serial": _speedup(rows[0], rows[1]),
        "speedup_warm_vs_cold": _speedup(rows[2], rows[3]),
    }


def _sweep_row(label: str, jobs: int, seconds: float, sweep: dict) -> dict:
    suite = sweep["suite"]
    return {
        "label": label,
        "jobs": jobs,
        "wall_seconds": round(seconds, 3),
        "programs": suite["programs"],
        "failures": suite["failures"],
        "cache_hit_rate": suite["cache"]["hit_rate"],
        "cache_hits": suite["cache"]["hit"],
        "cache_misses": suite["cache"]["miss"],
    }


def _speedup(base_row: dict, new_row: dict):
    base, new = base_row["wall_seconds"], new_row["wall_seconds"]
    return round(base / new, 3) if new > 0 else None


def _scale_rows(root: pathlib.Path, args, tmp: pathlib.Path) -> dict:
    """One large program: serial solve vs slice-parallel solve, and a
    cold vs warm cache roundtrip."""
    _ensure_src(root)
    from repro.cache.store import SolutionCache
    from repro.cache.solve import solve_with_cache
    from repro.core.analysis import analyze_program
    from repro.frontend.semantics import parse_and_analyze
    from repro.icfg.builder import build_icfg
    from repro.parallel import solve_sliced
    from repro.programs import ProgramSpec, generate_program

    target = args.scale_target
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    k = 3

    def fresh():
        analyzed = parse_and_analyze(source)
        return analyzed, build_icfg(analyzed)

    rows = []
    analyzed, icfg = fresh()
    t0 = time.perf_counter()
    serial = analyze_program(analyzed, icfg, k=k, on_budget="partial")
    rows.append(
        {
            "label": "serial",
            "jobs": 1,
            "wall_seconds": round(time.perf_counter() - t0, 3),
            "facts": len(serial.store),
            "cache_hit_rate": 0.0,
        }
    )

    analyzed, icfg = fresh()
    t0 = time.perf_counter()
    sliced = solve_sliced(source, analyzed, icfg, k=k, jobs=args.jobs)
    rows.append(
        {
            "label": "slice-parallel",
            "jobs": args.jobs,
            "wall_seconds": round(time.perf_counter() - t0, 3),
            "facts": len(sliced.store),
            "cache_hit_rate": 0.0,
        }
    )
    facts_equal = {(n, repr(a), repr(p)) for (n, a, p), _ in serial.store.facts()} == {
        (n, repr(a), repr(p)) for (n, a, p), _ in sliced.store.facts()
    }

    cache = SolutionCache(tmp / "scale-cache")
    for label in ("cold-cache", "warm-cache"):
        analyzed, icfg = fresh()
        # Snapshot the counters around each measured phase: every row
        # reports its own lookups only.  (Reading the cumulative
        # counters here is what made BENCH_PR5's warm row claim a 0.5
        # hit rate on an all-hit phase.)
        before = cache.counters.snapshot()
        t0 = time.perf_counter()
        _solution, status = solve_with_cache(
            analyzed, icfg, k=k, on_budget="partial", cache=cache
        )
        seconds = time.perf_counter() - t0
        phase = cache.counters.since(before)
        rows.append(
            {
                "label": label,
                "jobs": 1,
                "wall_seconds": round(seconds, 3),
                "cache_status": status,
                "cache_hit_rate": phase.hit_rate,
                "cache_hits": phase.hits,
                "cache_misses": phase.misses,
            }
        )

    return {
        "program": f"scale{target}",
        "k": k,
        "rows": rows,
        "sliced_facts_equal_serial": facts_equal,
        "speedup_parallel_vs_serial": _speedup(rows[0], rows[1]),
        "speedup_warm_vs_cold": _speedup(rows[2], rows[3]),
    }


def section_pr5(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-pr5-") as tmp_name:
        tmp = pathlib.Path(tmp_name)
        difftest = _difftest_rows(root, args, tmp)
        scale = _scale_rows(root, args, tmp)

    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 5,
        "description": (
            "Parallel sharded driver + content-addressed result cache: "
            "difftest sweep and the scaling fixture, serial vs --jobs N "
            "and cold vs warm cache.  Wall-clock speedups are "
            "hardware-bound — cpu_count below is what the numbers were "
            "measured on; with one core the process pool and the slice "
            "closure add overhead by construction, and the cache rows "
            "carry the repeat-run speedup instead."
        ),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "difftest_sweep": difftest,
        "scale_fixture": scale,
    }
    _write(root / "BENCH_PR5.json", payload)
    if not difftest["determinism_serial_equals_parallel"]:
        raise RuntimeError("parallel sweep stats differ from serial — investigate")
    if not scale["sliced_facts_equal_serial"]:
        raise RuntimeError("sliced solve diverged from serial — investigate")
    if difftest["warm_cache_skip_ratio"] < 0.9:
        raise RuntimeError(
            f"warm cache skipped only {difftest['warm_cache_skip_ratio']:.0%} "
            "of solves (acceptance: >= 90%)"
        )


def _engine_rows(root: pathlib.Path, args, tmp: pathlib.Path) -> dict:
    """Serial reference vs serial kernel on the scaling fixture, plus a
    cold/warm cache roundtrip on the kernel (per-phase counters)."""
    _ensure_src(root)
    from repro.cache.store import SolutionCache
    from repro.cache.solve import solve_with_cache
    from repro.core.analysis import analyze_program
    from repro.frontend.semantics import parse_and_analyze
    from repro.icfg.builder import build_icfg
    from repro.programs import ProgramSpec, generate_program

    target = args.scale_target
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    k = 3

    def fresh():
        analyzed = parse_and_analyze(source)
        return analyzed, build_icfg(analyzed)

    rows = []
    solutions = {}
    for engine in ("reference", "kernel"):
        analyzed, icfg = fresh()
        t0 = time.perf_counter()
        solution = analyze_program(
            analyzed, icfg, k=k, on_budget="partial", engine=engine
        )
        seconds = time.perf_counter() - t0
        solutions[engine] = solution
        report = solution.engine.as_dict()
        rows.append(
            {
                "label": f"serial-{engine}",
                "engine": engine,
                "jobs": 1,
                "wall_seconds": round(seconds, 3),
                "facts": len(solution.store),
                "worklist_pops": report.get("worklist_pops"),
                "join_calls": report.get("join_calls"),
                "join_fanout": report.get("join_fanout"),
            }
        )
    fact_sets_identical = dict(solutions["reference"].store.facts()) == dict(
        solutions["kernel"].store.facts()
    )
    del solutions

    cache = SolutionCache(tmp / "engine-cache")
    for label in ("cold-cache", "warm-cache"):
        analyzed, icfg = fresh()
        before = cache.counters.snapshot()
        t0 = time.perf_counter()
        _solution, status = solve_with_cache(
            analyzed, icfg, k=k, on_budget="partial", cache=cache
        )
        seconds = time.perf_counter() - t0
        phase = cache.counters.since(before)
        rows.append(
            {
                "label": label,
                "engine": "kernel",
                "jobs": 1,
                "wall_seconds": round(seconds, 3),
                "cache_status": status,
                "cache_hit_rate": phase.hit_rate,
                "cache_hits": phase.hits,
                "cache_misses": phase.misses,
            }
        )

    kernel_wall = rows[1]["wall_seconds"]
    cold_wall = rows[2]["wall_seconds"]
    store_overhead = (
        round((cold_wall - kernel_wall) / kernel_wall, 4) if kernel_wall else None
    )
    return {
        "program": f"scale{target}",
        "k": k,
        "rows": rows,
        "fact_sets_identical": fact_sets_identical,
        "speedup_kernel_vs_reference": _speedup(rows[0], rows[1]),
        "store_overhead_ratio": store_overhead,
        "speedup_warm_vs_cold": _speedup(rows[2], rows[3]),
    }


def section_pr6(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-pr6-") as tmp_name:
        tmp = pathlib.Path(tmp_name)
        engines = _engine_rows(root, args, tmp)

    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 6,
        "description": (
            "Integer-ID fact kernel vs the reference engine on the "
            "scaling fixture (continuing the BENCH_PR1/PR5 serial "
            "trajectory), plus the kernel's cold/warm cache roundtrip "
            "with per-phase counters.  store_overhead_ratio is the "
            "cold-cache wall over the plain kernel solve minus one — "
            "the price of serializing and persisting the solution, "
            "pinned at <= 10% now that the envelope is written from "
            "the kernel's flat columns."
        ),
        "cpu_count": os.cpu_count(),
        "engines": engines,
    }
    _write(root / "BENCH_PR6.json", payload)
    if not engines["fact_sets_identical"]:
        raise RuntimeError("kernel fact set diverged from reference — investigate")
    speedup = engines["speedup_kernel_vs_reference"]
    if speedup is None or speedup < 10.0:
        raise RuntimeError(
            f"kernel speedup {speedup} below the 10x acceptance bar"
        )
    overhead = engines["store_overhead_ratio"]
    if overhead is None or overhead > 0.10:
        raise RuntimeError(
            f"cache store overhead {overhead} above the 10% bar"
        )
    warm = engines["rows"][3]
    if warm["cache_status"] != "hit" or warm["cache_hit_rate"] != 1.0:
        raise RuntimeError(
            f"warm-cache row must be an all-hit phase, got {warm}"
        )


def _summary_rows(root: pathlib.Path, args, tmp: pathlib.Path) -> dict:
    """Serial kernel vs the summary engine at jobs 1 and 4 on the
    scaling fixture, plus a cold/warm per-procedure cache roundtrip."""
    _ensure_src(root)
    from repro.cache.store import SolutionCache
    from repro.core.analysis import analyze_program
    from repro.frontend.semantics import parse_and_analyze
    from repro.icfg.builder import build_icfg
    from repro.io import solution_to_dict
    from repro.programs import ProgramSpec, generate_program
    from repro.summaries.solver import solve_summary

    target = args.scale_target
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    k = 3

    # One fresh parse per solve: rebuilding the ICFG on a shared
    # analyzed program shifts the temp-name uniquifiers and would make
    # the byte-identity comparison below fail spuriously.
    def fresh():
        analyzed = parse_and_analyze(source)
        return analyzed, build_icfg(analyzed)

    rows = []
    analyzed, icfg = fresh()
    t0 = time.perf_counter()
    kernel = analyze_program(analyzed, icfg, k=k, on_budget="partial", engine="kernel")
    kernel_report = kernel.engine.as_dict()
    rows.append(
        {
            "label": "serial-kernel",
            "engine": "kernel",
            "jobs": 1,
            "wall_seconds": round(time.perf_counter() - t0, 3),
            "facts": len(kernel.store),
            "worklist_pops": kernel_report.get("worklist_pops"),
        }
    )
    kernel_facts = dict(kernel.store.facts())

    summary_docs = {}
    facts_equal_kernel = True
    for jobs in (1, args.jobs):
        analyzed, icfg = fresh()
        t0 = time.perf_counter()
        solution = solve_summary(
            analyzed, icfg, k=k, jobs=jobs, on_budget="partial", oversubscribe=True
        )
        seconds = time.perf_counter() - t0
        report = solution.engine.as_dict()
        rows.append(
            {
                "label": f"summary-jobs{jobs}",
                "engine": "summary",
                "jobs": jobs,
                "wall_seconds": round(seconds, 3),
                "facts": len(solution.store),
                "worklist_pops": report.get("worklist_pops"),
                "work_ratio_vs_kernel": (
                    round(report["worklist_pops"] / kernel_report["worklist_pops"], 3)
                    if kernel_report.get("worklist_pops")
                    else None
                ),
            }
        )
        facts_equal_kernel &= dict(solution.store.facts()) == kernel_facts
        summary_docs[jobs] = json.dumps(
            solution_to_dict(solution, packed=True), sort_keys=True
        )
    jobs_byte_identical = len(set(summary_docs.values())) == 1

    # Per-procedure envelope cache: a cold solve populates one envelope
    # per (procedure, inputs-digest) drain, a warm re-solve must replay
    # almost all of them.
    cache = SolutionCache(tmp / "summary-cache")
    cache_rows = []
    for label in ("cold-cache", "warm-cache"):
        analyzed, icfg = fresh()
        before = cache.counters.snapshot()
        t0 = time.perf_counter()
        solve_summary(
            analyzed, icfg, k=k, jobs=1, on_budget="partial",
            cache=cache, source=source,
        )
        seconds = time.perf_counter() - t0
        phase = cache.counters.since(before)
        cache_rows.append(
            {
                "label": label,
                "engine": "summary",
                "jobs": 1,
                "wall_seconds": round(seconds, 3),
                "cache_hit_rate": phase.hit_rate,
                "cache_hits": phase.hits,
                "cache_misses": phase.misses,
            }
        )
    rows.extend(cache_rows)

    return {
        "program": f"scale{target}",
        "k": k,
        "rows": rows,
        "fact_sets_identical_kernel_vs_summary": facts_equal_kernel,
        "jobs_byte_identical": jobs_byte_identical,
        "speedup_summary_vs_kernel": _speedup(rows[0], rows[1]),
        "speedup_jobs_vs_serial": _speedup(rows[1], rows[2]),
        "warm_hit_rate": cache_rows[1]["cache_hit_rate"],
        "speedup_warm_vs_cold": _speedup(cache_rows[0], cache_rows[1]),
    }


def section_pr7(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-pr7-") as tmp_name:
        tmp = pathlib.Path(tmp_name)
        summaries = _summary_rows(root, args, tmp)

    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 7,
        "description": (
            "Bottom-up procedure summaries vs the serial kernel on the "
            "scaling fixture.  The summary engine pays for condensation "
            "and instantiation in worklist pops (work_ratio_vs_kernel) "
            "and buys back per-procedure incrementality: the warm-cache "
            "row replays per-procedure envelopes instead of re-solving. "
            "cpu_count is what the numbers were measured on — the jobs-4 "
            "row is oversubscribed on fewer cores, so its wall clock "
            "shows pool overhead, not speedup; the byte-identity pin is "
            "the point of that row."
        ),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "summaries": summaries,
    }
    _write(root / "BENCH_PR7.json", payload)
    if not summaries["fact_sets_identical_kernel_vs_summary"]:
        raise RuntimeError("summary fact set diverged from kernel — investigate")
    if not summaries["jobs_byte_identical"]:
        raise RuntimeError("summary solutions differ across job counts — investigate")
    if summaries["warm_hit_rate"] < 0.9:
        raise RuntimeError(
            f"warm per-procedure cache hit rate {summaries['warm_hit_rate']} "
            "below the 90% bar"
        )


def _must_row(root: pathlib.Path, target: int, k: int = 3) -> dict:
    """One scaling program: may solve vs must solve wall clock, the
    whole-program interval, and the lint upgrade counts."""
    _ensure_src(root)
    from repro.core.kernel import KernelAnalysis
    from repro.frontend import parse_and_analyze
    from repro.icfg import IcfgBuilder
    from repro.lint import run_lint
    from repro.must import solve_must
    from repro.programs import ProgramSpec, generate_program

    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    analyzed = parse_and_analyze(source)
    icfg = IcfgBuilder(analyzed).build()

    t0 = time.perf_counter()
    store = KernelAnalysis(analyzed, icfg, k=k).run()
    kernel_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    must = solve_must(analyzed, icfg, k=k)
    must_wall = time.perf_counter() - t0

    may_total = sum(len(store.pairs_at(node.nid)) for node in icfg.nodes)
    must_total = must.total_pairs()

    plain = run_lint(source, k=k)
    upgraded = run_lint(source, k=k, must=True)
    return {
        "program": f"scale{target}",
        "k": k,
        "icfg_nodes": len(icfg.nodes),
        "kernel_wall_seconds": round(kernel_wall, 3),
        "must_wall_seconds": round(must_wall, 3),
        "must_over_kernel_ratio": (
            round(must_wall / kernel_wall, 4) if kernel_wall else None
        ),
        "may_node_pairs": may_total,
        "must_node_pairs": must_total,
        "interval_width": may_total - must_total,
        "must_classes": must.total_classes(),
        "lint_findings": len(upgraded.findings),
        "definite_without_must": plain.definite_count(),
        "definite_with_must": upgraded.definite_count(),
        "upgraded_findings": upgraded.definite_count() - plain.definite_count(),
    }


def section_must(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    rows = [_must_row(root, target) for target in (240, args.scale_target)]
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 8,
        "description": (
            "Must-alias under-approximation on the scaling fixtures: "
            "the must solve's wall clock relative to the kernel may "
            "solve (must_over_kernel_ratio), the whole-program "
            "[must, may] interval (width = may - must node pairs), and "
            "the lint confidence upgrades bought by the must side "
            "(upgraded_findings = definite findings gained by --must)."
        ),
        "cpu_count": os.cpu_count(),
        "rows": rows,
    }
    _write(root / "BENCH_PR8.json", payload)
    for row in rows:
        if row["interval_width"] < 0:
            raise RuntimeError(
                f"{row['program']}: must pairs exceed may pairs — "
                "the under-approximation is unsound, investigate"
            )
        if row["upgraded_findings"] < 0:
            raise RuntimeError(
                f"{row['program']}: --must lost definite findings — investigate"
            )


def _corpus_rows(report: dict) -> list:
    rows = []
    for entry in report["files"]:
        if entry["status"] != "ok":
            rows.append(
                {
                    "file": entry["path"],
                    "status": entry["status"],
                    "error": entry.get("error"),
                    "seconds": entry.get("seconds"),
                }
            )
            continue
        precision = entry["precision"]
        ledger = entry["ledger"]
        rows.append(
            {
                "file": entry["path"],
                "status": "ok",
                "seconds": entry["seconds"],
                "complete": entry["solution"]["complete"],
                "icfg_nodes": entry["solution"]["icfg_nodes"],
                "lr_untruncated": precision["lr_untruncated"],
                "weihl_untruncated": precision["weihl_untruncated"],
                "ratio_weihl_over_lr": precision["ratio_weihl_over_lr"],
                "coverage_percent": ledger["coverage_percent"],
                "lowering_events": ledger["event_counts"],
                "stubs": (entry.get("stubs") or {}).get("stubbed", []),
                "lint_findings": entry["lint"]["findings"],
                "cache": entry["cache"],
            }
        )
    return rows


def section_corpus(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    _ensure_src(root)
    import shutil
    import tempfile

    from repro.corpus import run_corpus

    corpus_root = root / "corpus"
    cache_dir = tempfile.mkdtemp(prefix="repro-corpus-cache-")
    try:
        cold = run_corpus(
            [corpus_root], k=args.corpus_k, jobs=args.jobs, cache_dir=cache_dir
        )
        warm = run_corpus(
            [corpus_root], k=args.corpus_k, jobs=args.jobs, cache_dir=cache_dir
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 9,
        "description": (
            "Real-code corpus precision sweep (the Table 1 analogue on "
            "vendored C files): per-file LR vs Weihl untruncated alias "
            "counts, lenient-lowering coverage percentages with every "
            "lowering event counted, synthesized stubs, wall times, and "
            "the cold -> warm cache behaviour.  Partial (budget-bound) "
            "solutions are reported with complete=false and are never "
            "cached."
        ),
        "cpu_count": os.cpu_count(),
        "k": args.corpus_k,
        "jobs": args.jobs,
        "cold": {"files": _corpus_rows(cold), "aggregate": cold["aggregate"]},
        "warm": {"files": _corpus_rows(warm), "aggregate": warm["aggregate"]},
    }
    _write(root / "BENCH_PR9.json", payload)

    agg = warm["aggregate"]
    hard = agg["parse_errors"] + agg["semantic_errors"] + agg["shard_failures"]
    if hard:
        raise RuntimeError(f"corpus run had {hard} hard failures — investigate")
    cacheable = agg["files_ok"] - agg["files_partial"]
    hits = agg["cache"]["hits"]
    if cacheable and hits < 0.9 * cacheable:
        raise RuntimeError(
            f"warm corpus pass hit cache only {hits}/{cacheable} times"
        )


def section_serve(root: pathlib.Path, out_dir: pathlib.Path, args) -> None:
    _ensure_src(root)
    import shutil
    import tempfile

    from repro.serve.loadgen import LoadClient, boot_daemon, run_load

    cache_dir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    process = None
    try:
        process, host, port = boot_daemon(
            jobs=args.jobs, k=3, cache_dir=cache_dir
        )
        client = LoadClient(host, port)
        try:
            report = run_load(
                client,
                seed=args.serve_seed,
                requests=args.serve_requests,
                programs=args.serve_programs,
            )
        finally:
            client.close()
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=30)
            except Exception:
                process.kill()
        shutil.rmtree(cache_dir, ignore_errors=True)

    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 10,
        "description": (
            "Incremental serve daemon under the seeded loadgen: cold "
            "first solves, warm mixed edit/query/lint latencies and "
            "req/s against one resident session, the failure ledger, "
            "and the invalidation-scoping ratio (every edit touches "
            "one procedure body, so a healthy daemon re-solves only "
            "that procedure and replays the rest from the "
            "per-procedure cache).  cpu_count is what the numbers were "
            "measured on — the daemon runs one solver lane, so req/s "
            "is bounded by single-solve wall clock, by design."
        ),
        "cpu_count": os.cpu_count(),
        "jobs": args.jobs,
        "loadgen": report,
    }
    _write(root / "BENCH_PR10.json", payload)

    failures = sum(report["failures"].values())
    if failures:
        raise RuntimeError(
            f"serve loadgen recorded {failures} failures "
            f"({report['failures']}) — investigate"
        )
    scoped = report["edit_scoped_ratio"]
    edits = (report["server_metrics"].get("session") or {}).get(
        "post_edit_solves", 0
    )
    if edits and (scoped is None or scoped < 0.9):
        raise RuntimeError(
            f"edit-scoped ratio {scoped} below the 90% bar over "
            f"{edits} post-edit solves — invalidation is leaking"
        )


def _write(path: pathlib.Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


SECTION_RUNNERS = {
    "tables": collect_tables,
    "pr1": section_pr1,
    "pr2": section_pr2,
    "pr3": section_pr3,
    "pr5": section_pr5,
    "pr6": section_pr6,
    "pr7": section_pr7,
    "must": section_must,
    "corpus": section_corpus,
    "serve": section_serve,
}


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sections",
        default=",".join(ALL_SECTIONS),
        help=f"comma-separated subset of {ALL_SECTIONS} (default: all)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=40,
        help="difftest sweep size for pr2/pr3 (default 40)",
    )
    parser.add_argument(
        "--pr5-seeds",
        type=int,
        default=12,
        help="difftest sweep size for the pr5 serial/parallel rows (default 12)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="job count for the pr5 parallel rows (default 4)",
    )
    parser.add_argument(
        "--scale-target",
        type=int,
        default=800,
        help="scaling-fixture node target for pr3/pr5 (default 800)",
    )
    parser.add_argument(
        "--corpus-k",
        type=int,
        default=1,
        help="k-limit for the corpus section (default 1, Table 1 style)",
    )
    parser.add_argument(
        "--serve-requests",
        type=int,
        default=200,
        help="warm mixed requests for the serve section (default 200)",
    )
    parser.add_argument(
        "--serve-programs",
        type=int,
        default=3,
        help="resident programs for the serve section (default 3)",
    )
    parser.add_argument(
        "--serve-seed",
        type=int,
        default=1992,
        help="loadgen workload seed for the serve section (default 1992)",
    )
    return parser.parse_args(argv)


def main(argv=None) -> int:
    args = parse_args(argv)
    sections = [s.strip() for s in args.sections.split(",") if s.strip()]
    unknown = [s for s in sections if s not in SECTION_RUNNERS]
    if unknown:
        print(f"unknown sections: {unknown} (expected {ALL_SECTIONS})")
        return 2

    root = pathlib.Path(__file__).resolve().parents[1]
    out_dir = root / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)

    failed = []
    for section in sections:
        try:
            SECTION_RUNNERS[section](root, out_dir, args)
        except Exception as exc:
            failed.append(section)
            print(f"section {section} FAILED: {exc}")
            traceback.print_exc()
    if failed:
        print(f"failed sections: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
