#!/usr/bin/env python3
"""Assemble benchmark outputs into the tracked result files.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py

Two artifacts are produced:

* ``EXPERIMENTS.md`` — the text tables from ``benchmarks/out/*.txt``
  embedded as an appendix (unchanged behaviour from the seed).
* ``BENCH_PR1.json`` at the repo root — the engine-discipline numbers
  for this PR: worklist pops under the deduplicated engine vs the seed
  discipline on the largest scaling fixture, with the node-by-node
  may-alias equality check.  The dedup comparison is read from
  ``benchmarks/out/scaling_dedup.json`` when the bench suite already
  wrote it, and computed inline otherwise.

``BENCH_PR2.json`` is additionally produced via the difftest harness
(``repro difftest --stats-json`` equivalent): a generator sweep whose
lattice checks must come back violation-free, with oracle/coverage
statistics for the record.
"""

import json
import pathlib
import sys

MARKER = "## Appendix — measured tables (latest benchmark run)"
BENCH_SCHEMA = "repro-bench/1"


def collect_tables(root: pathlib.Path, out_dir: pathlib.Path) -> int:
    experiments = root / "EXPERIMENTS.md"
    tables = []
    for path in sorted(out_dir.glob("*.txt")):
        tables.append(f"### {path.name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    if not tables:
        return 0
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    appendix = f"\n{MARKER}\n\n" + "\n".join(tables)
    experiments.write_text(text + appendix)
    return len(tables)


def dedup_comparison(root: pathlib.Path, out_dir: pathlib.Path) -> dict:
    fragment = out_dir / "scaling_dedup.json"
    if fragment.exists():
        return json.loads(fragment.read_text())
    # No fragment — compute inline on the largest scaling fixture.
    sys.path.insert(0, str(root / "src"))
    from repro.bench.runner import compare_dedup
    from repro.programs import ProgramSpec, generate_program

    from bench_scaling import SIZES  # noqa: E402  (benchmarks/ on sys.path)

    target = SIZES[-1]
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    return compare_dedup(f"scale{target}", source, k=3).as_dict()


def difftest_sweep(root: pathlib.Path, seeds: int = 40) -> dict:
    """The repro-difftest/1 stats document for the tracked sweep."""
    if str(root / "src") not in sys.path:
        sys.path.insert(0, str(root / "src"))
    from repro.difftest import DifftestConfig, run_difftest_suite

    config = DifftestConfig()
    suite = run_difftest_suite(
        range(1, seeds + 1), config, stop_on_failure=False
    )
    return {
        "schema": "repro-difftest/1",
        "config": {
            "k": config.k,
            "draws": config.draws,
            "max_facts": config.max_facts,
            "seeds": seeds,
        },
        "suite": suite.stats_dict(),
        "failures": [v.as_dict() for v in suite.failures],
    }


def main() -> None:
    root = pathlib.Path(__file__).resolve().parents[1]
    out_dir = root / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)

    n_tables = collect_tables(root, out_dir)
    if n_tables:
        print(f"embedded {n_tables} tables into EXPERIMENTS.md")
    else:
        print("no tables in benchmarks/out/; skipping EXPERIMENTS.md appendix")

    comparison = dedup_comparison(root, out_dir)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 1,
        "description": (
            "Deduplicated worklist vs seed discipline on the largest "
            "scaling fixture: pops must not increase and the may-alias "
            "sets must be node-identical."
        ),
        "dedup_vs_seed": comparison,
    }
    bench_path = root / "BENCH_PR1.json"
    bench_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {bench_path}")

    sweep = difftest_sweep(root)
    pr2_payload = {
        "schema": BENCH_SCHEMA,
        "pr": 2,
        "description": (
            "Differential-testing sweep: dynamic/exact oracle containment, "
            "Weihl coverage and budget degradation over generated programs "
            "(equivalent to `repro difftest --stats-json`)."
        ),
        "difftest": sweep,
    }
    pr2_path = root / "BENCH_PR2.json"
    pr2_path.write_text(json.dumps(pr2_payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {pr2_path}")

    if not comparison.get("identical_may_alias", False):
        raise SystemExit("dedup changed the may-alias sets — investigate")
    if comparison["pops_dedup"] > comparison["pops_seed"]:
        raise SystemExit("dedup increased worklist pops — investigate")
    if sweep["suite"]["failures"]:
        raise SystemExit("difftest sweep found soundness violations — investigate")


if __name__ == "__main__":
    main()
