#!/usr/bin/env python3
"""Assemble benchmark outputs into the tracked result files.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py

Two artifacts are produced:

* ``EXPERIMENTS.md`` — the text tables from ``benchmarks/out/*.txt``
  embedded as an appendix (unchanged behaviour from the seed).
* ``BENCH_PR1.json`` at the repo root — the engine-discipline numbers
  for this PR: worklist pops under the deduplicated engine vs the seed
  discipline on the largest scaling fixture, with the node-by-node
  may-alias equality check.  The dedup comparison is read from
  ``benchmarks/out/scaling_dedup.json`` when the bench suite already
  wrote it, and computed inline otherwise.

``BENCH_PR2.json`` is additionally produced via the difftest harness
(``repro difftest --stats-json`` equivalent): a generator sweep whose
lattice checks must come back violation-free, with oracle/coverage
statistics for the record.

``BENCH_PR3.json`` measures the lint layer on the largest scaling
fixture: wall time (analysis vs detectors), findings per detector, and
the LR-vs-Weihl false-positive delta — the user-visible precision the
flow-sensitive solution buys (EXPERIMENTS.md "Lint precision" table).
The difftest sweep backing PR 3's oracle-validation acceptance (every
dynamically witnessed pointer bug covered by a finding) is part of the
``difftest_sweep`` stats via the ``lint_soundness`` check.
"""

import json
import pathlib
import sys

MARKER = "## Appendix — measured tables (latest benchmark run)"
BENCH_SCHEMA = "repro-bench/1"


def collect_tables(root: pathlib.Path, out_dir: pathlib.Path) -> int:
    experiments = root / "EXPERIMENTS.md"
    tables = []
    for path in sorted(out_dir.glob("*.txt")):
        tables.append(f"### {path.name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    if not tables:
        return 0
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    appendix = f"\n{MARKER}\n\n" + "\n".join(tables)
    experiments.write_text(text + appendix)
    return len(tables)


def dedup_comparison(root: pathlib.Path, out_dir: pathlib.Path) -> dict:
    fragment = out_dir / "scaling_dedup.json"
    if fragment.exists():
        return json.loads(fragment.read_text())
    # No fragment — compute inline on the largest scaling fixture.
    sys.path.insert(0, str(root / "src"))
    from repro.bench.runner import compare_dedup
    from repro.programs import ProgramSpec, generate_program

    from bench_scaling import SIZES  # noqa: E402  (benchmarks/ on sys.path)

    target = SIZES[-1]
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    return compare_dedup(f"scale{target}", source, k=3).as_dict()


def difftest_sweep(root: pathlib.Path, seeds: int = 40) -> dict:
    """The repro-difftest/1 stats document for the tracked sweep."""
    if str(root / "src") not in sys.path:
        sys.path.insert(0, str(root / "src"))
    from repro.difftest import DifftestConfig, run_difftest_suite

    config = DifftestConfig()
    suite = run_difftest_suite(
        range(1, seeds + 1), config, stop_on_failure=False
    )
    return {
        "schema": "repro-difftest/1",
        "config": {
            "k": config.k,
            "draws": config.draws,
            "max_facts": config.max_facts,
            "seeds": seeds,
        },
        "suite": suite.stats_dict(),
        "failures": [v.as_dict() for v in suite.failures],
    }


def lint_scale(root: pathlib.Path, target: int = 800) -> dict:
    """Lint the largest scaling fixture under LR with the Weihl
    comparison: wall time, findings per detector, FP delta."""
    if str(root / "src") not in sys.path:
        sys.path.insert(0, str(root / "src"))
    from repro.lint import run_lint
    from repro.programs import ProgramSpec, generate_program

    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    report = run_lint(source, provider="lr", compare_with="weihl", k=3)
    return {
        "program": f"scale{target}",
        "k": 3,
        "analysis_seconds": round(report.analysis_seconds, 3),
        "lint_seconds": round(report.lint_seconds, 3),
        "findings": len(report.findings),
        "findings_by_rule": dict(sorted(report.rule_counts().items())),
        "weihl_findings_by_rule": dict(sorted(report.comparison_counts.items())),
        "fp_delta": dict(sorted(report.fp_delta().items())),
        "fp_avoided": sum(d for d in report.fp_delta().values() if d > 0),
    }


def main() -> None:
    root = pathlib.Path(__file__).resolve().parents[1]
    out_dir = root / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)

    n_tables = collect_tables(root, out_dir)
    if n_tables:
        print(f"embedded {n_tables} tables into EXPERIMENTS.md")
    else:
        print("no tables in benchmarks/out/; skipping EXPERIMENTS.md appendix")

    comparison = dedup_comparison(root, out_dir)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 1,
        "description": (
            "Deduplicated worklist vs seed discipline on the largest "
            "scaling fixture: pops must not increase and the may-alias "
            "sets must be node-identical."
        ),
        "dedup_vs_seed": comparison,
    }
    bench_path = root / "BENCH_PR1.json"
    bench_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {bench_path}")

    sweep = difftest_sweep(root)
    pr2_payload = {
        "schema": BENCH_SCHEMA,
        "pr": 2,
        "description": (
            "Differential-testing sweep: dynamic/exact oracle containment, "
            "Weihl coverage and budget degradation over generated programs "
            "(equivalent to `repro difftest --stats-json`)."
        ),
        "difftest": sweep,
    }
    pr2_path = root / "BENCH_PR2.json"
    pr2_path.write_text(json.dumps(pr2_payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {pr2_path}")

    lint = lint_scale(root)
    pr3_payload = {
        "schema": BENCH_SCHEMA,
        "pr": 3,
        "description": (
            "Lint layer on the largest scaling fixture: detector wall "
            "time, findings per rule, and the LR-vs-Weihl false-positive "
            "delta (positive = findings the flow-insensitive baseline "
            "emits that flow sensitivity rules out).  Oracle-backed "
            "detector soundness rides in the difftest sweep's "
            "lint_soundness check."
        ),
        "lint_scale": lint,
        "lint_soundness": sweep["suite"]["checks"].get("lint_soundness", {}),
        "lint_suite": sweep["suite"].get("lint", {}),
    }
    pr3_path = root / "BENCH_PR3.json"
    pr3_path.write_text(json.dumps(pr3_payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {pr3_path}")

    if not comparison.get("identical_may_alias", False):
        raise SystemExit("dedup changed the may-alias sets — investigate")
    if comparison["pops_dedup"] > comparison["pops_seed"]:
        raise SystemExit("dedup increased worklist pops — investigate")
    if sweep["suite"]["failures"]:
        raise SystemExit("difftest sweep found soundness violations — investigate")


if __name__ == "__main__":
    main()
