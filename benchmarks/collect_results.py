#!/usr/bin/env python3
"""Assemble benchmark outputs into the tracked result files.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py

Two artifacts are produced:

* ``EXPERIMENTS.md`` — the text tables from ``benchmarks/out/*.txt``
  embedded as an appendix (unchanged behaviour from the seed).
* ``BENCH_PR1.json`` at the repo root — the engine-discipline numbers
  for this PR: worklist pops under the deduplicated engine vs the seed
  discipline on the largest scaling fixture, with the node-by-node
  may-alias equality check.  The dedup comparison is read from
  ``benchmarks/out/scaling_dedup.json`` when the bench suite already
  wrote it, and computed inline otherwise.
"""

import json
import pathlib
import sys

MARKER = "## Appendix — measured tables (latest benchmark run)"
BENCH_SCHEMA = "repro-bench/1"


def collect_tables(root: pathlib.Path, out_dir: pathlib.Path) -> int:
    experiments = root / "EXPERIMENTS.md"
    tables = []
    for path in sorted(out_dir.glob("*.txt")):
        tables.append(f"### {path.name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    if not tables:
        return 0
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    appendix = f"\n{MARKER}\n\n" + "\n".join(tables)
    experiments.write_text(text + appendix)
    return len(tables)


def dedup_comparison(root: pathlib.Path, out_dir: pathlib.Path) -> dict:
    fragment = out_dir / "scaling_dedup.json"
    if fragment.exists():
        return json.loads(fragment.read_text())
    # No fragment — compute inline on the largest scaling fixture.
    sys.path.insert(0, str(root / "src"))
    from repro.bench.runner import compare_dedup
    from repro.programs import ProgramSpec, generate_program

    from bench_scaling import SIZES  # noqa: E402  (benchmarks/ on sys.path)

    target = SIZES[-1]
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)
    return compare_dedup(f"scale{target}", source, k=3).as_dict()


def main() -> None:
    root = pathlib.Path(__file__).resolve().parents[1]
    out_dir = root / "benchmarks" / "out"
    out_dir.mkdir(parents=True, exist_ok=True)

    n_tables = collect_tables(root, out_dir)
    if n_tables:
        print(f"embedded {n_tables} tables into EXPERIMENTS.md")
    else:
        print("no tables in benchmarks/out/; skipping EXPERIMENTS.md appendix")

    comparison = dedup_comparison(root, out_dir)
    payload = {
        "schema": BENCH_SCHEMA,
        "pr": 1,
        "description": (
            "Deduplicated worklist vs seed discipline on the largest "
            "scaling fixture: pops must not increase and the may-alias "
            "sets must be node-identical."
        ),
        "dedup_vs_seed": comparison,
    }
    bench_path = root / "BENCH_PR1.json"
    bench_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {bench_path}")
    if not comparison.get("identical_may_alias", False):
        raise SystemExit("dedup changed the may-alias sets — investigate")
    if comparison["pops_dedup"] > comparison["pops_seed"]:
        raise SystemExit("dedup increased worklist pops — investigate")


if __name__ == "__main__":
    main()
