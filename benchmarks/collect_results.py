#!/usr/bin/env python3
"""Assemble benchmarks/out/*.txt into the EXPERIMENTS.md appendix.

Run after ``pytest benchmarks/ --benchmark-only``::

    python benchmarks/collect_results.py
"""

import pathlib

MARKER = "## Appendix — measured tables (latest benchmark run)"


def main() -> None:
    root = pathlib.Path(__file__).resolve().parents[1]
    out_dir = root / "benchmarks" / "out"
    experiments = root / "EXPERIMENTS.md"
    tables = []
    for path in sorted(out_dir.glob("*.txt")):
        tables.append(f"### {path.name}\n\n```\n{path.read_text().rstrip()}\n```\n")
    if not tables:
        raise SystemExit("no tables in benchmarks/out/; run the benchmarks first")
    text = experiments.read_text()
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    appendix = f"\n{MARKER}\n\n" + "\n".join(tables)
    experiments.write_text(text + appendix)
    print(f"embedded {len(tables)} tables into EXPERIMENTS.md")


if __name__ == "__main__":
    main()
