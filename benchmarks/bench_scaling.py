"""Scaling: analysis cost as a function of program size.

The paper's tables report analysis time per program; this bench makes
the size→cost relationship explicit on a controlled family (one
generator, one style, four sizes).  Expected shape: fact counts and
time grow superlinearly with ICFG nodes — exactly the growth visible
across the paper's Table 2 (257 aliases at 407 nodes vs 400k at 5960).

Output: ``benchmarks/out/scaling.txt``.
"""

import pytest

from repro.bench import format_table, write_json, write_report
from repro.bench.runner import compare_dedup, measure
from repro.programs import ProgramSpec, generate_program

SIZES = (100, 200, 400, 800)

_ROWS: dict[int, object] = {}


@pytest.mark.parametrize("target", SIZES)
def test_scaling_point(benchmark, target):
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)

    def run():
        return measure(f"scale{target}", source, k=3, run_weihl=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[target] = result


def test_dedup_vs_seed_discipline(benchmark):
    """The deduplicated worklist does strictly no more pops than the
    seed discipline on the largest fixture of the family, with
    node-identical may-alias sets.  The numbers land in
    ``benchmarks/out/scaling_dedup.json`` and from there in the
    repo-root ``BENCH_PR1.json`` trajectory file."""
    target = SIZES[-1]
    spec = ProgramSpec.for_target_nodes("scaling", target)
    source = generate_program(spec)

    def run():
        return compare_dedup(f"scale{target}", source, k=3)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    write_json("scaling_dedup.json", comparison.as_dict())
    assert comparison.identical_may_alias, "dedup changed the may-alias sets"
    assert comparison.pops_dedup <= comparison.pops_seed


def test_scaling_report(benchmark):
    if not _ROWS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for target in SIZES:
        m = _ROWS[target]
        rows.append(
            (
                target,
                m.icfg_nodes,
                m.lr_node_aliases,
                f"{m.lr_node_aliases / max(1, m.icfg_nodes):.1f}",
                f"{m.percent_yes:.0f}",
                f"{m.lr_seconds:.2f}s",
            )
        )
    table = format_table(
        "Scaling — analysis cost vs program size (same generator family)",
        ("target", "nodes", "(node,alias)", "aliases/node", "%YES", "time"),
        rows,
        note="superlinear alias growth matches the paper's Table 2 spread",
    )
    path = write_report("scaling.txt", table)
    print(f"\n{table}\nwritten to {path}")
    small = _ROWS[SIZES[0]]
    large = _ROWS[SIZES[-1]]
    assert (
        large.lr_node_aliases / max(1, small.lr_node_aliases)
        > large.icfg_nodes / max(1, small.icfg_nodes)
    ), "alias counts must grow superlinearly in nodes on this family"
