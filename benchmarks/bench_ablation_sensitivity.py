"""Ablation: what flow/context sensitivity buys (DESIGN.md §4).

Three analyses on the same fixture programs:

* **Landi/Ryder** — flow- and (conditionally) context-sensitive;
* **Andersen-style** — flow- and context-insensitive points-to
  (a modern middle ground, not in the 1992 paper);
* **Weihl** — flow-insensitive transitive closure (the paper's
  baseline).

Expected shape: LR <= Andersen <= Weihl on program-alias counts, with
the gaps widening on programs with multiple call sites per procedure
(realizable-path separation is exactly what the baselines lack).

Output: ``benchmarks/out/ablation.txt``.
"""

import pytest

from repro.baselines.typebased import typebased_aliases
from repro.bench import format_table, measure, write_report
from repro.frontend import parse_and_analyze
from repro.icfg import build_icfg
from repro.programs import ProgramSpec, generate_program
from repro.programs.fixtures import ALL_FIXTURES

PROGRAMS = dict(ALL_FIXTURES)
# Two synthetic members exercise heavier call graphs.
for _name, _target in (("synth_small", 250), ("synth_medium", 500)):
    PROGRAMS[_name] = generate_program(
        ProgramSpec.for_target_nodes(_name, _target)
    )

_ROWS: dict[str, object] = {}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_ablation_program(benchmark, name):
    source = PROGRAMS[name]

    def run():
        result = measure(name, source, k=2, run_weihl=True, run_andersen=True)
        analyzed = parse_and_analyze(source)
        typebased = typebased_aliases(analyzed, build_icfg(analyzed), k=2)
        return result, len(typebased.aliases)

    result, typebased_count = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[name] = (result, typebased_count)
    assert result.weihl_aliases >= result.lr_program_aliases


def test_ablation_report(benchmark):
    if not _ROWS:
        pytest.skip("no rows collected (run with --benchmark-only)")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name in sorted(_ROWS):
        m, typebased_count = _ROWS[name]
        rows.append(
            (
                name,
                m.icfg_nodes,
                m.lr_program_aliases,
                m.weihl_aliases,
                m.andersen_aliases,
                typebased_count,
                f"{m.percent_yes:.0f}",
                f"{m.lr_seconds:.2f}s",
            )
        )
    table = format_table(
        "Ablation — precision vs analysis sensitivity",
        ("program", "nodes", "LR", "Weihl", "Andersen (var)", "type-based", "%YES", "LR time"),
        rows,
        note="LR/Weihl/type-based count untruncated k-limited name pairs; "
        "Andersen counts variable-level pairs (different unit)",
    )
    path = write_report("ablation.txt", table)
    print(f"\n{table}\nwritten to {path}")
